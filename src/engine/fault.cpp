#include "engine/fault.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

namespace mrbc::sim {

namespace {

// Decorrelates the message-level stream from the straggler assignment so
// changing straggler_rate does not reshuffle drop/corrupt decisions.
constexpr std::uint64_t kChannelStream = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kStragglerStream = 0x2545f4914f6cdd1dull;

// Bump when the serialized FaultPlan layout changes.
constexpr std::uint32_t kPlanVersion = 1;

}  // namespace

void FaultPlan::save(util::SendBuffer& buf) const {
  buf.write<std::uint32_t>(kPlanVersion);
  buf.write<std::uint64_t>(seed);
  buf.write<double>(drop_rate);
  buf.write<double>(duplicate_rate);
  buf.write<double>(corrupt_rate);
  buf.write<double>(straggler_rate);
  buf.write<double>(straggler_slowdown);
  buf.write<std::uint32_t>(crash_round);
  buf.write<HostId>(crash_host);
  buf.write<std::uint64_t>(events.size());
  for (const FaultEvent& e : events) {
    buf.write<std::uint8_t>(static_cast<std::uint8_t>(e.kind));
    buf.write<std::uint32_t>(e.round);
    buf.write<HostId>(e.host);
  }
}

void FaultPlan::restore(util::RecvBuffer& buf) {
  const auto version = buf.read<std::uint32_t>();
  if (version != kPlanVersion) {
    throw std::out_of_range("FaultPlan: unsupported serialized version " +
                            std::to_string(version));
  }
  seed = buf.read<std::uint64_t>();
  drop_rate = buf.read<double>();
  duplicate_rate = buf.read<double>();
  corrupt_rate = buf.read<double>();
  straggler_rate = buf.read<double>();
  straggler_slowdown = buf.read<double>();
  crash_round = buf.read<std::uint32_t>();
  crash_host = buf.read<HostId>();
  const auto n = buf.read<std::uint64_t>();
  events.clear();
  events.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(buf.read<std::uint8_t>());
    e.round = buf.read<std::uint32_t>();
    e.host = buf.read<HostId>();
    events.push_back(e);
  }
}

FaultInjector::FaultInjector(const FaultPlan& plan, HostId num_hosts)
    : plan_(plan), num_hosts_(num_hosts), rng_(plan.seed ^ kChannelStream) {
  slowdown_.assign(std::max<HostId>(num_hosts, 1), 1.0);
  util::Xoshiro256 srng(plan.seed ^ kStragglerStream);
  for (auto& s : slowdown_) {
    if (plan_.straggler_rate > 0.0 && srng.next_bool(plan_.straggler_rate)) {
      s = std::max(1.0, plan_.straggler_slowdown);
    }
  }
  event_fired_.assign(plan_.events.size(), 0);
}

bool FaultInjector::drop(HostId, HostId, std::uint64_t) {
  return plan_.drop_rate > 0.0 && rng_.next_bool(plan_.drop_rate);
}

bool FaultInjector::duplicate(HostId, HostId, std::uint64_t) {
  return plan_.duplicate_rate > 0.0 && rng_.next_bool(plan_.duplicate_rate);
}

long FaultInjector::corrupt_bit(HostId, HostId, std::uint64_t, std::size_t payload_bytes) {
  if (payload_bytes == 0 || plan_.corrupt_rate <= 0.0 || !rng_.next_bool(plan_.corrupt_rate)) {
    return -1;
  }
  return static_cast<long>(rng_.next_bounded(payload_bytes * 8));
}

double FaultInjector::compute_slowdown(HostId h) const {
  return h < slowdown_.size() ? slowdown_[h] : 1.0;
}

bool FaultInjector::crash_due(std::size_t round, HostId* crashed) {
  if (!crash_fired_ && plan_.crash_round != 0 && round == plan_.crash_round) {
    crash_fired_ = true;
    if (crashed) *crashed = num_hosts_ > 0 ? plan_.crash_host % num_hosts_ : 0;
    return true;
  }
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (event_fired_[i] || e.kind != FaultKind::kCrash || e.round == 0 || round != e.round) {
      continue;
    }
    event_fired_[i] = 1;
    if (crashed) *crashed = num_hosts_ > 0 ? e.host % num_hosts_ : 0;
    return true;
  }
  return false;
}

bool FaultInjector::crash_armed() const {
  if (plan_.crash_round != 0 && !crash_fired_) return true;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (!event_fired_[i] && plan_.events[i].kind == FaultKind::kCrash &&
        plan_.events[i].round != 0) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::death_due(std::size_t round, HostId* dead) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (event_fired_[i] || e.kind != FaultKind::kHostDeath || e.round == 0 ||
        round != e.round) {
      continue;
    }
    event_fired_[i] = 1;
    if (dead) *dead = num_hosts_ > 0 ? e.host % num_hosts_ : 0;
    return true;
  }
  return false;
}

bool FaultInjector::deaths_armed() const {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (!event_fired_[i] && plan_.events[i].kind == FaultKind::kHostDeath &&
        plan_.events[i].round != 0) {
      return true;
    }
  }
  return false;
}

void FaultInjector::rearm() {
  crash_fired_ = false;
  event_fired_.assign(plan_.events.size(), 0);
  rng_ = util::Xoshiro256(plan_.seed ^ kChannelStream);
}

void FaultInjector::save_cursor(util::SendBuffer& buf) const {
  const auto state = rng_.state();
  for (std::uint64_t word : state) buf.write<std::uint64_t>(word);
  buf.write<std::uint8_t>(crash_fired_ ? 1 : 0);
  buf.write_vector(event_fired_);
}

void FaultInjector::restore_cursor(util::RecvBuffer& buf) {
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = buf.read<std::uint64_t>();
  rng_.set_state(state);
  crash_fired_ = buf.read<std::uint8_t>() != 0;
  event_fired_ = buf.read_vector<std::uint8_t>();
  event_fired_.resize(plan_.events.size(), 0);
}

}  // namespace mrbc::sim
