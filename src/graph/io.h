#pragma once
// Edge-list and binary CSR IO. The paper's artifact consumes on-disk graph
// files (web crawls, SNAP datasets); these routines provide the equivalent
// ingestion path for user-supplied data.

#include <string>

#include "graph/graph.h"

namespace mrbc::graph {

/// Reads a whitespace-separated edge-list text file ("src dst" per line;
/// '#' and '%' lines are comments). Vertex ids may be sparse: they are
/// remapped densely in first-appearance order. Throws std::runtime_error on
/// IO failure.
Graph read_edge_list(const std::string& path);

/// Writes "src dst" lines for every edge.
void write_edge_list(const Graph& g, const std::string& path);

/// Binary CSR format: magic, n, m, offsets, targets. Round-trips exactly.
void write_binary(const Graph& g, const std::string& path);
Graph read_binary(const std::string& path);

}  // namespace mrbc::graph
