#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.h"

namespace mrbc::graph {

namespace {
constexpr std::uint64_t kMagic = 0x4d52424347524148ULL;  // "MRBCGRAH"
}

Graph read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  std::unordered_map<std::uint64_t, VertexId> remap;
  std::vector<Edge> edges;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t src, dst;
    if (ls >> src >> dst) {
      edges.push_back({intern(src), intern(dst)});
    }
  }
  return build_graph(static_cast<VertexId>(remap.size()), std::move(edges));
}

void write_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.out_neighbors(u)) out << u << ' ' << v << '\n';
  }
}

void write_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  const std::uint64_t n = g.num_vertices(), m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.out_offsets().data()),
            static_cast<std::streamsize>(g.out_offsets().size() * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(g.out_targets().data()),
            static_cast<std::streamsize>(g.out_targets().size() * sizeof(VertexId)));
}

Graph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open binary graph: " + path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) throw std::runtime_error("bad magic in binary graph: " + path);
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(VertexId)));
  if (!in) throw std::runtime_error("truncated binary graph: " + path);
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace mrbc::graph
