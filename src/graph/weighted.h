#pragma once
// Weighted directed graphs: the paper evaluates unweighted graphs only, but
// notes that ABBC and MFBC "can also handle weighted graphs" — this module
// provides the weighted substrate those variants run on: a CSR graph with
// positive integer edge weights (aligned to both the out- and in-edge
// orders), weighted shortest-path golden references (Dijkstra with path
// counting), and weight generators.

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mrbc::graph {

using Weight = std::uint32_t;
using WeightedDist = std::uint64_t;  ///< path length; never overflows for 2^32 hops
constexpr WeightedDist kInfWeightedDist = static_cast<WeightedDist>(-1);

/// CSR graph plus per-edge positive weights.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// `weights` aligned with g.out_targets() (CSR out-edge order).
  WeightedGraph(Graph g, std::vector<Weight> weights);

  const Graph& graph() const { return graph_; }
  VertexId num_vertices() const { return graph_.num_vertices(); }
  EdgeId num_edges() const { return graph_.num_edges(); }

  /// Weight of the i-th out-edge of u (i indexes u's out_neighbors()).
  Weight out_weight(VertexId u, std::size_t i) const {
    return out_weights_[graph_.out_offsets()[u] + i];
  }

  /// Weight of the i-th in-edge of v (i indexes v's in_neighbors()).
  Weight in_weight(VertexId v, std::size_t i) const { return in_weights_[in_offset(v) + i]; }

  const std::vector<Weight>& out_weights() const { return out_weights_; }

 private:
  EdgeId in_offset(VertexId v) const { return in_offsets_[v]; }

  Graph graph_;
  std::vector<Weight> out_weights_;
  // In-edge weights aligned with in_neighbors() order, for backward sweeps.
  std::vector<EdgeId> in_offsets_;
  std::vector<Weight> in_weights_;
};

/// Uniformly random weights in [min_weight, max_weight] on an existing
/// graph's edges.
WeightedGraph with_random_weights(Graph g, Weight min_weight, Weight max_weight,
                                  std::uint64_t seed);

/// Unit weights: weighted algorithms must then agree with their unweighted
/// counterparts (used heavily in tests).
WeightedGraph with_unit_weights(Graph g);

/// Result of a weighted single-source shortest-path computation.
struct DijkstraResult {
  std::vector<WeightedDist> dist;
  std::vector<double> sigma;                      ///< shortest-path counts
  std::vector<std::vector<VertexId>> preds;       ///< SP-DAG predecessors
  std::vector<VertexId> order;                    ///< settled order (non-decreasing dist)
};

/// Dijkstra with shortest-path counting (the weighted analogue of bfs()).
DijkstraResult dijkstra(const WeightedGraph& g, VertexId source);

}  // namespace mrbc::graph
