#pragma once
// Synthetic graph generators covering the graph families of the paper's
// evaluation (Table 1):
//   - RMAT power-law graphs (rmat24, and stand-ins for social networks)
//   - Kronecker graphs (kron30)
//   - web-crawl-like graphs: a power-law core with long tail chains, giving
//     the "non-trivial diameter due to long tails" property of gsh15 and
//     clueweb12 that MRBC exploits
//   - road networks: grid with sparse diagonals and near-constant degree,
//     giving huge diameter (road-europe)
// plus simple structured graphs (paths, cycles, trees, complete, stars)
// used heavily by the test suite because their BC values are known in
// closed form.

#include <cstdint>

#include "graph/graph.h"

namespace mrbc::graph {

/// Parameters for the recursive-matrix (RMAT) generator of Chakrabarti et
/// al.; defaults are the standard (0.57, 0.19, 0.19, 0.05) skew.
struct RmatParams {
  int scale = 10;              ///< 2^scale vertices.
  double edge_factor = 16.0;   ///< edges = edge_factor * vertices.
  double a = 0.57, b = 0.19, c = 0.19;
  std::uint64_t seed = 1;
};

/// Directed RMAT graph (duplicates and self-loops removed).
Graph rmat(const RmatParams& params);

/// Kronecker-style power-law graph (Leskovec et al.): like RMAT but with
/// per-level noise to smooth the degree distribution.
Graph kronecker(int scale, double edge_factor, std::uint64_t seed);

/// G(n, p) directed Erdos-Renyi graph.
Graph erdos_renyi(VertexId n, double p, std::uint64_t seed);

/// Directed random graph with exactly ~m edges sampled uniformly.
Graph uniform_random(VertexId n, EdgeId m, std::uint64_t seed);

/// Road-network-like graph: a width x height 4-connected grid (both
/// directions per road segment) with `extra_edge_prob` diagonal shortcuts;
/// diameter is Theta(width + height).
Graph road_grid(VertexId width, VertexId height, double extra_edge_prob, std::uint64_t seed);

/// Web-crawl stand-in: `core_scale` RMAT core plus `num_tails` directed
/// chains of `tail_len` vertices hanging off the core (entering and leaving
/// it), reproducing the long-tail diameter structure of real crawls.
Graph web_crawl_like(int core_scale, double edge_factor, VertexId num_tails, VertexId tail_len,
                     std::uint64_t seed);

/// Directed path 0 -> 1 -> ... -> n-1.
Graph path(VertexId n);

/// Bidirectional path (undirected line graph).
Graph bidirectional_path(VertexId n);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
Graph cycle(VertexId n);

/// Complete directed graph on n vertices (all ordered pairs).
Graph complete(VertexId n);

/// Star with bidirectional spokes: center 0, leaves 1..n-1.
Graph star(VertexId n);

/// Complete binary tree with bidirectional edges, vertices in heap order.
Graph binary_tree(VertexId n);

/// Random DAG: edges only from lower to higher vertex id, each present with
/// probability p.
Graph random_dag(VertexId n, double p, std::uint64_t seed);

/// Watts-Strogatz small-world graph (bidirectional edges): a ring lattice
/// where each vertex connects to its k nearest neighbors, with each edge
/// rewired to a random endpoint with probability beta. beta=0 gives a
/// high-diameter ring; beta~0.1 gives the small-world regime.
Graph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed);

/// Ensures strong connectivity by adding a directed Hamiltonian cycle over a
/// random permutation; used when tests need D < infinity.
Graph strongly_connected_overlay(const Graph& g, std::uint64_t seed);

}  // namespace mrbc::graph
