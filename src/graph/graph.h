#pragma once
// Compressed-sparse-row directed graph. This is the in-memory graph format
// every layer of the system consumes: generators produce it, partitioners
// slice it into per-host local graphs, and the algorithms traverse it.
//
// Both out- and in-adjacency are stored: the forward phase of every BC
// algorithm walks out-edges, the accumulation phase walks in-edges
// (predecessors in the shortest-path DAG), and the CONGEST simulator needs
// both directions because communication channels are bidirectional even on
// directed graphs (Section 2.2 of the paper).

#include <cstdint>
#include <span>
#include <vector>

namespace mrbc::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Distance value for "unreachable" throughout the library.
constexpr std::uint32_t kInfDist = static_cast<std::uint32_t>(-1);

/// Immutable CSR graph with out- and in-adjacency.
/// Construct via GraphBuilder (builder.h) or a generator (generators.h).
class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays for the out-direction; the in-direction is
  /// derived. `out_offsets` has n+1 entries; `out_targets` has m entries.
  Graph(std::vector<EdgeId> out_offsets, std::vector<VertexId> out_targets);

  VertexId num_vertices() const { return n_; }
  EdgeId num_edges() const { return m_; }

  std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            static_cast<std::size_t>(out_offsets_[v + 1] - out_offsets_[v])};
  }

  std::span<const VertexId> in_neighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            static_cast<std::size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }

  std::size_t out_degree(VertexId v) const {
    return static_cast<std::size_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  std::size_t in_degree(VertexId v) const {
    return static_cast<std::size_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::size_t max_out_degree() const;
  std::size_t max_in_degree() const;

  /// Returns the reverse graph (every edge flipped).
  Graph transposed() const;

  /// Returns the undirected closure UG: for each edge (u,v), both (u,v) and
  /// (v,u) exist (duplicates removed).
  Graph undirected() const;

  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_targets() const { return out_targets_; }

  /// True if edge (u, v) exists. O(out_degree(u)).
  bool has_edge(VertexId u, VertexId v) const;

 private:
  void build_in_adjacency();

  VertexId n_ = 0;
  EdgeId m_ = 0;
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_targets_;
  std::vector<EdgeId> in_offsets_;
  std::vector<VertexId> in_sources_;
};

/// An edge in COO form; the builder and IO layers work with these.
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace mrbc::graph
