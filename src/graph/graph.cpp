#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "graph/builder.h"

namespace mrbc::graph {

Graph::Graph(std::vector<EdgeId> out_offsets, std::vector<VertexId> out_targets)
    : out_offsets_(std::move(out_offsets)), out_targets_(std::move(out_targets)) {
  assert(!out_offsets_.empty());
  n_ = static_cast<VertexId>(out_offsets_.size() - 1);
  m_ = static_cast<EdgeId>(out_targets_.size());
  assert(out_offsets_.back() == m_);
  build_in_adjacency();
}

void Graph::build_in_adjacency() {
  in_offsets_.assign(n_ + 1, 0);
  for (VertexId t : out_targets_) ++in_offsets_[t + 1];
  for (VertexId v = 0; v < n_; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_sources_.resize(m_);
  std::vector<EdgeId> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v : out_neighbors(u)) {
      in_sources_[cursor[v]++] = u;
    }
  }
}

std::size_t Graph::max_out_degree() const {
  std::size_t mx = 0;
  for (VertexId v = 0; v < n_; ++v) mx = std::max(mx, out_degree(v));
  return mx;
}

std::size_t Graph::max_in_degree() const {
  std::size_t mx = 0;
  for (VertexId v = 0; v < n_; ++v) mx = std::max(mx, in_degree(v));
  return mx;
}

Graph Graph::transposed() const {
  std::vector<Edge> edges;
  edges.reserve(m_);
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v : out_neighbors(u)) edges.push_back({v, u});
  }
  return build_graph(n_, std::move(edges));
}

Graph Graph::undirected() const {
  std::vector<Edge> edges;
  edges.reserve(2 * m_);
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v : out_neighbors(u)) {
      edges.push_back({u, v});
      edges.push_back({v, u});
    }
  }
  return build_graph(n_, std::move(edges));
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  auto nbrs = out_neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

}  // namespace mrbc::graph
