#include "graph/weighted.h"

#include <cassert>
#include <queue>

#include "util/rng.h"

namespace mrbc::graph {

WeightedGraph::WeightedGraph(Graph g, std::vector<Weight> weights)
    : graph_(std::move(g)), out_weights_(std::move(weights)) {
  assert(out_weights_.size() == graph_.num_edges());
  // Mirror weights into the in-adjacency order: for each vertex v, the i-th
  // in-neighbor entry corresponds to one specific (u, v) edge; rebuild the
  // correspondence by walking out-edges exactly as Graph::build_in_adjacency
  // does.
  const VertexId n = graph_.num_vertices();
  in_offsets_.assign(n + 1, 0);
  for (VertexId t : graph_.out_targets()) ++in_offsets_[t + 1];
  for (VertexId v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_weights_.resize(graph_.num_edges());
  std::vector<EdgeId> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    auto nbrs = graph_.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      in_weights_[cursor[nbrs[i]]++] = out_weights_[graph_.out_offsets()[u] + i];
    }
  }
}

WeightedGraph with_random_weights(Graph g, Weight min_weight, Weight max_weight,
                                  std::uint64_t seed) {
  assert(min_weight >= 1 && min_weight <= max_weight);
  util::Xoshiro256 rng(seed);
  std::vector<Weight> weights(g.num_edges());
  for (auto& w : weights) {
    w = min_weight + static_cast<Weight>(rng.next_bounded(max_weight - min_weight + 1));
  }
  return WeightedGraph(std::move(g), std::move(weights));
}

WeightedGraph with_unit_weights(Graph g) {
  std::vector<Weight> weights(g.num_edges(), 1);
  return WeightedGraph(std::move(g), std::move(weights));
}

DijkstraResult dijkstra(const WeightedGraph& wg, VertexId source) {
  const Graph& g = wg.graph();
  const VertexId n = g.num_vertices();
  DijkstraResult r;
  r.dist.assign(n, kInfWeightedDist);
  r.sigma.assign(n, 0.0);
  r.preds.assign(n, {});
  r.order.reserve(n);

  using Item = std::pair<WeightedDist, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  std::vector<bool> settled(n, false);
  r.dist[source] = 0;
  r.sigma[source] = 1.0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    r.order.push_back(u);
    auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      const WeightedDist cand = d + wg.out_weight(u, i);
      if (cand < r.dist[v]) {
        r.dist[v] = cand;
        r.sigma[v] = r.sigma[u];
        r.preds[v] = {u};
        heap.push({cand, v});
      } else if (cand == r.dist[v] && !settled[v]) {
        r.sigma[v] += r.sigma[u];
        r.preds[v].push_back(u);
      }
    }
  }
  return r;
}

}  // namespace mrbc::graph
