#include "graph/algorithms.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/rng.h"

namespace mrbc::graph {

BfsResult bfs(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kInfDist);
  r.sigma.assign(n, 0.0);
  r.preds.assign(n, {});
  r.dist[source] = 0;
  r.sigma[source] = 1.0;
  std::queue<VertexId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (VertexId v : g.out_neighbors(u)) {
      if (r.dist[v] == kInfDist) {
        r.dist[v] = r.dist[u] + 1;
        queue.push(v);
      }
      if (r.dist[v] == r.dist[u] + 1) {
        r.sigma[v] += r.sigma[u];
        r.preds[v].push_back(u);
      }
    }
  }
  return r;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, kInfDist);
  dist[source] = 0;
  std::queue<VertexId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (VertexId v : g.out_neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

ComponentResult weakly_connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  ComponentResult r{std::vector<VertexId>(n, kInvalidVertex), 0};
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (r.component[s] != kInvalidVertex) continue;
    const VertexId cid = r.num_components++;
    r.component[s] = cid;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      auto visit = [&](VertexId v) {
        if (r.component[v] == kInvalidVertex) {
          r.component[v] = cid;
          stack.push_back(v);
        }
      };
      for (VertexId v : g.out_neighbors(u)) visit(v);
      for (VertexId v : g.in_neighbors(u)) visit(v);
    }
  }
  return r;
}

ComponentResult strongly_connected_components(const Graph& g) {
  // Iterative Tarjan with an explicit DFS stack.
  const VertexId n = g.num_vertices();
  ComponentResult r{std::vector<VertexId>(n, kInvalidVertex), 0};
  std::vector<VertexId> index(n, kInvalidVertex), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> scc_stack;
  VertexId next_index = 0;

  struct Frame {
    VertexId v;
    std::size_t edge;
  };
  std::vector<Frame> dfs;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kInvalidVertex) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const VertexId v = frame.v;
      auto nbrs = g.out_neighbors(v);
      if (frame.edge < nbrs.size()) {
        const VertexId w = nbrs[frame.edge++];
        if (index[w] == kInvalidVertex) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          const VertexId cid = r.num_components++;
          VertexId w;
          do {
            w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            r.component[w] = cid;
          } while (w != v);
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        }
      }
    }
  }
  return r;
}

bool is_weakly_connected(const Graph& g) {
  return g.num_vertices() == 0 || weakly_connected_components(g).num_components == 1;
}

bool is_strongly_connected(const Graph& g) {
  return g.num_vertices() == 0 || strongly_connected_components(g).num_components == 1;
}

std::uint32_t exact_diameter(const Graph& g) {
  std::uint32_t diameter = 0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    for (std::uint32_t d : bfs_distances(g, s)) {
      if (d != kInfDist) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::uint32_t estimated_diameter(const Graph& g, const std::vector<VertexId>& sources) {
  std::uint32_t diameter = 0;
  for (VertexId s : sources) {
    for (std::uint32_t d : bfs_distances(g, s)) {
      if (d != kInfDist) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

std::uint32_t eccentricity(const Graph& g, VertexId v) {
  std::uint32_t ecc = 0;
  for (std::uint32_t d : bfs_distances(g, v)) {
    if (d != kInfDist) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::vector<VertexId> sample_sources(const Graph& g, VertexId k, std::uint64_t seed,
                                     bool contiguous) {
  const VertexId n = g.num_vertices();
  k = std::min(k, n);
  util::Xoshiro256 rng(seed);
  std::vector<VertexId> sources;
  sources.reserve(k);
  if (contiguous) {
    const VertexId start = static_cast<VertexId>(rng.next_bounded(n - k + 1));
    for (VertexId i = 0; i < k; ++i) sources.push_back(start + i);
  } else {
    // Partial Fisher-Yates over the vertex range.
    std::vector<VertexId> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    for (VertexId i = 0; i < k; ++i) {
      std::swap(ids[i], ids[i + rng.next_bounded(n - i)]);
      sources.push_back(ids[i]);
    }
  }
  return sources;
}

}  // namespace mrbc::graph
