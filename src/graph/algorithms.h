#pragma once
// Shared-memory graph algorithms used as golden references and workload
// characterization: BFS (shortest distances and path counts), connectivity,
// and diameter estimation (Table 1 reports an "estimated diameter" as the
// maximum finite shortest-path distance observed from the sampled sources).

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mrbc::graph {

/// Result of a single-source BFS: distances, shortest-path counts sigma,
/// and the predecessor sets of the SSSP DAG (Brandes' P_s(v)).
struct BfsResult {
  std::vector<std::uint32_t> dist;
  std::vector<double> sigma;
  std::vector<std::vector<VertexId>> preds;
};

/// BFS over out-edges from `source`, computing distances, path counts and
/// DAG predecessors in O(n + m).
BfsResult bfs(const Graph& g, VertexId source);

/// Distances only (cheaper; no sigma/preds).
std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source);

/// Weakly connected components; returns component id per vertex and the
/// component count.
struct ComponentResult {
  std::vector<VertexId> component;
  VertexId num_components;
};
ComponentResult weakly_connected_components(const Graph& g);

/// Strongly connected components (iterative Tarjan). Component ids are
/// assigned in reverse topological order of the condensation.
ComponentResult strongly_connected_components(const Graph& g);

bool is_weakly_connected(const Graph& g);
bool is_strongly_connected(const Graph& g);

/// Exact directed diameter: max finite d(u,v) over all pairs. O(n(n+m)) —
/// only for test-sized graphs.
std::uint32_t exact_diameter(const Graph& g);

/// Paper-style estimated diameter: max finite distance from the given
/// sources.
std::uint32_t estimated_diameter(const Graph& g, const std::vector<VertexId>& sources);

/// Eccentricity of `v`: max finite distance from v.
std::uint32_t eccentricity(const Graph& g, VertexId v);

/// Picks `k` distinct source vertices. `contiguous` mimics the paper's
/// "random contiguous chunk" sampling (required by MFBC); otherwise sources
/// are sampled uniformly without replacement.
std::vector<VertexId> sample_sources(const Graph& g, VertexId k, std::uint64_t seed,
                                     bool contiguous = true);

}  // namespace mrbc::graph
