#include "graph/builder.h"

#include <algorithm>
#include <cassert>

namespace mrbc::graph {

namespace {
Graph csr_from_sorted(VertexId num_vertices, const std::vector<Edge>& edges) {
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.src < num_vertices && e.dst < num_vertices);
    ++offsets[e.src + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> targets(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) targets[i] = edges[i].dst;
  return Graph(std::move(offsets), std::move(targets));
}
}  // namespace

Graph build_graph(VertexId num_vertices, std::vector<Edge> edges) {
  EdgeListBuilder builder(num_vertices);
  builder.adopt_edges(std::move(edges));
  return std::move(builder).build();
}

Graph build_graph_unchecked(VertexId num_vertices, std::vector<Edge> sorted_unique_edges) {
  EdgeListBuilder builder(num_vertices);
  builder.adopt_edges(std::move(sorted_unique_edges));
  return std::move(builder).build_sorted_unique();
}

void EdgeListBuilder::adopt_edges(std::vector<Edge>&& edges) {
  if (edges_.empty()) {
    edges_ = std::move(edges);
  } else {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }
}

Graph EdgeListBuilder::build() && {
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return csr_from_sorted(n_, edges_);
}

Graph EdgeListBuilder::build_sorted_unique() && {
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  assert(std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end());
  return csr_from_sorted(n_, edges_);
}

}  // namespace mrbc::graph
