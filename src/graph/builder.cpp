#include "graph/builder.h"

#include <algorithm>
#include <cassert>

namespace mrbc::graph {

namespace {
Graph csr_from_sorted(VertexId num_vertices, const std::vector<Edge>& edges) {
  std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    assert(e.src < num_vertices && e.dst < num_vertices);
    ++offsets[e.src + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<VertexId> targets(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) targets[i] = edges[i].dst;
  return Graph(std::move(offsets), std::move(targets));
}
}  // namespace

Graph build_graph(VertexId num_vertices, std::vector<Edge> edges) {
  std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return csr_from_sorted(num_vertices, edges);
}

Graph build_graph_unchecked(VertexId num_vertices, std::vector<Edge> sorted_unique_edges) {
  assert(std::is_sorted(sorted_unique_edges.begin(), sorted_unique_edges.end()));
  return csr_from_sorted(num_vertices, sorted_unique_edges);
}

}  // namespace mrbc::graph
