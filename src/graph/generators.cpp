#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "graph/builder.h"
#include "util/rng.h"

namespace mrbc::graph {

using util::Xoshiro256;

namespace {

/// One RMAT edge sample: recursively descend the adjacency matrix quadrants.
Edge rmat_edge(int scale, double a, double b, double c, Xoshiro256& rng, double noise) {
  VertexId src = 0, dst = 0;
  for (int level = 0; level < scale; ++level) {
    double pa = a, pb = b, pc = c;
    if (noise > 0.0) {
      // Kronecker-style smoothing: jitter the quadrant probabilities.
      const double mu = 1.0 + noise * (rng.next_double() - 0.5);
      pa *= mu;
      pb *= 1.0 + noise * (rng.next_double() - 0.5);
      pc *= 1.0 + noise * (rng.next_double() - 0.5);
      const double total = pa + pb + pc + (1.0 - a - b - c) * mu;
      pa /= total;
      pb /= total;
      pc /= total;
    }
    const double r = rng.next_double();
    src <<= 1;
    dst <<= 1;
    if (r < pa) {
      // top-left quadrant: no bits set
    } else if (r < pa + pb) {
      dst |= 1;
    } else if (r < pa + pb + pc) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

Graph rmat_like(int scale, double edge_factor, double a, double b, double c, std::uint64_t seed,
                double noise) {
  const VertexId n = VertexId{1} << scale;
  const auto target_edges = static_cast<std::size_t>(edge_factor * static_cast<double>(n));
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  for (std::size_t i = 0; i < target_edges; ++i) {
    edges.push_back(rmat_edge(scale, a, b, c, rng, noise));
  }
  return build_graph(n, std::move(edges));
}

}  // namespace

Graph rmat(const RmatParams& p) {
  return rmat_like(p.scale, p.edge_factor, p.a, p.b, p.c, p.seed, /*noise=*/0.0);
}

Graph kronecker(int scale, double edge_factor, std::uint64_t seed) {
  return rmat_like(scale, edge_factor, 0.57, 0.19, 0.19, seed, /*noise=*/0.2);
}

Graph erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  // Geometric skipping over the n^2 possible edges: O(m) expected time.
  if (p > 0.0 && n > 0) {
    const double log1mp = std::log1p(-p);
    const auto total = static_cast<std::uint64_t>(n) * n;
    std::uint64_t idx = 0;
    while (true) {
      const double u = std::max(rng.next_double(), 1e-300);
      const auto skip = p >= 1.0 ? 1 : static_cast<std::uint64_t>(std::log(u) / log1mp) + 1;
      if (total - idx < skip) break;
      idx += skip;
      edges.push_back({static_cast<VertexId>((idx - 1) / n), static_cast<VertexId>((idx - 1) % n)});
    }
  }
  return build_graph(n, std::move(edges));
}

Graph uniform_random(VertexId n, EdgeId m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    edges.push_back({static_cast<VertexId>(rng.next_bounded(n)),
                     static_cast<VertexId>(rng.next_bounded(n))});
  }
  return build_graph(n, std::move(edges));
}

Graph road_grid(VertexId width, VertexId height, double extra_edge_prob, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const VertexId n = width * height;
  auto id = [width](VertexId x, VertexId y) { return y * width + x; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 4);
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      const VertexId v = id(x, y);
      if (x + 1 < width) {
        edges.push_back({v, id(x + 1, y)});
        edges.push_back({id(x + 1, y), v});
      }
      if (y + 1 < height) {
        edges.push_back({v, id(x, y + 1)});
        edges.push_back({id(x, y + 1), v});
      }
      if (x + 1 < width && y + 1 < height && rng.next_bool(extra_edge_prob)) {
        edges.push_back({v, id(x + 1, y + 1)});
        edges.push_back({id(x + 1, y + 1), v});
      }
    }
  }
  return build_graph(n, std::move(edges));
}

Graph web_crawl_like(int core_scale, double edge_factor, VertexId num_tails, VertexId tail_len,
                     std::uint64_t seed) {
  const VertexId core_n = VertexId{1} << core_scale;
  const VertexId n = core_n + num_tails * tail_len;
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);

  // Power-law core.
  const auto target_edges = static_cast<std::size_t>(edge_factor * static_cast<double>(core_n));
  std::vector<Edge> edges;
  edges.reserve(target_edges + static_cast<std::size_t>(num_tails) * (tail_len + 1));
  Xoshiro256 core_rng(seed);
  for (std::size_t i = 0; i < target_edges; ++i) {
    edges.push_back(rmat_edge(core_scale, 0.57, 0.19, 0.19, core_rng, 0.0));
  }

  // Long tails: directed chains leaving the core and re-entering it, so the
  // estimated diameter grows by ~tail_len while the graph stays (mostly)
  // one weak component, as in real crawls' long-tail structure.
  VertexId next = core_n;
  for (VertexId t = 0; t < num_tails; ++t) {
    VertexId prev = static_cast<VertexId>(rng.next_bounded(core_n));
    for (VertexId i = 0; i < tail_len; ++i) {
      edges.push_back({prev, next});
      edges.push_back({next, prev});  // crawls can navigate back links
      prev = next++;
    }
    edges.push_back({prev, static_cast<VertexId>(rng.next_bounded(core_n))});
  }
  return build_graph(n, std::move(edges));
}

Graph path(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return build_graph(n, std::move(edges));
}

Graph bidirectional_path(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) {
    edges.push_back({v, v + 1});
    edges.push_back({v + 1, v});
  }
  return build_graph(n, std::move(edges));
}

Graph cycle(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  return build_graph(n, std::move(edges));
}

Graph complete(VertexId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.push_back({u, v});
    }
  }
  return build_graph(n, std::move(edges));
}

Graph star(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) {
    edges.push_back({0, v});
    edges.push_back({v, 0});
  }
  return build_graph(n, std::move(edges));
}

Graph binary_tree(VertexId n) {
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) {
    const VertexId parent = (v - 1) / 2;
    edges.push_back({parent, v});
    edges.push_back({v, parent});
  }
  return build_graph(n, std::move(edges));
}

Graph random_dag(VertexId n, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) edges.push_back({u, v});
    }
  }
  return build_graph(n, std::move(edges));
}

Graph watts_strogatz(VertexId n, VertexId k, double beta, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  // Ring lattice: each vertex to its k/2 clockwise neighbors; each lattice
  // edge's far endpoint is rewired with probability beta.
  const VertexId half = std::max<VertexId>(k / 2, 1);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId j = 1; j <= half; ++j) {
      VertexId w = (v + j) % n;
      if (beta > 0.0 && rng.next_bool(beta)) {
        w = static_cast<VertexId>(rng.next_bounded(n));
        if (w == v) w = (v + j) % n;  // avoid self loop; keep the lattice edge
      }
      edges.push_back({v, w});
      edges.push_back({w, v});
    }
  }
  return build_graph(n, std::move(edges));
}

Graph strongly_connected_overlay(const Graph& g, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_bounded(i)]);
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges() + n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.out_neighbors(u)) edges.push_back({u, v});
  }
  for (VertexId i = 0; i < n; ++i) edges.push_back({perm[i], perm[(i + 1) % n]});
  return build_graph(n, std::move(edges));
}

}  // namespace mrbc::graph
