#pragma once
// Construction of CSR graphs from edge lists. Self-loops and duplicate
// edges are removed: the paper's graphs are simple unweighted directed
// graphs, and duplicate edges would corrupt shortest-path counts.

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mrbc::graph {

/// Builds a Graph over vertices [0, num_vertices) from an arbitrary edge
/// list. Deduplicates edges and drops self-loops. Edges referencing
/// vertices >= num_vertices are invalid (asserted in debug builds).
Graph build_graph(VertexId num_vertices, std::vector<Edge> edges);

/// Same but keeps self-loops/duplicates intact for callers that already
/// guarantee a clean list (generators use this to skip a sort).
Graph build_graph_unchecked(VertexId num_vertices, std::vector<Edge> sorted_unique_edges);

/// Incremental, allocation-aware edge-list assembly. Producers that know
/// their edge count up front (epoch compaction in stream::DeltaGraph, bulk
/// loaders) reserve once, append, and finish in place — the full edge list
/// is never copied a second time.
///
/// Two finishers:
///   build()               — build_graph semantics (drop self-loops, sort,
///                           dedup); the general path.
///   build_sorted_unique() — skips the sort for producers that emit edges
///                           in ascending (src, dst) order with no
///                           duplicates or self-loops (asserted in debug
///                           builds); epoch compaction merges two sorted
///                           streams and qualifies.
/// Both consume the builder (rvalue-qualified); reuse after build is a bug.
class EdgeListBuilder {
 public:
  explicit EdgeListBuilder(VertexId num_vertices) : n_(num_vertices) {}

  void reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

  void add_edge(VertexId src, VertexId dst) { edges_.push_back({src, dst}); }
  void add_edges(std::span<const Edge> edges) {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }
  /// Adopts an existing list wholesale (no copy); appended edges follow it.
  void adopt_edges(std::vector<Edge>&& edges);

  VertexId num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  Graph build() &&;
  Graph build_sorted_unique() &&;

 private:
  VertexId n_;
  std::vector<Edge> edges_;
};

}  // namespace mrbc::graph
