#pragma once
// Construction of CSR graphs from edge lists. Self-loops and duplicate
// edges are removed: the paper's graphs are simple unweighted directed
// graphs, and duplicate edges would corrupt shortest-path counts.

#include <vector>

#include "graph/graph.h"

namespace mrbc::graph {

/// Builds a Graph over vertices [0, num_vertices) from an arbitrary edge
/// list. Deduplicates edges and drops self-loops. Edges referencing
/// vertices >= num_vertices are invalid (asserted in debug builds).
Graph build_graph(VertexId num_vertices, std::vector<Edge> edges);

/// Same but keeps self-loops/duplicates intact for callers that already
/// guarantee a clean list (generators use this to skip a sort).
Graph build_graph_unchecked(VertexId num_vertices, std::vector<Edge> sorted_unique_edges);

}  // namespace mrbc::graph
