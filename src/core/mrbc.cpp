#include "core/mrbc.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <span>

#include "comm/substrate.h"
#include "core/mrbc_state.h"
#include "core/staged_drain.h"
#include "engine/fault.h"
#include "engine/recovery.h"
#include "engine/snapshot.h"
#include "graph/algorithms.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/threading.h"

namespace mrbc::core {

using graph::kInfDist;
using partition::HostId;
using partition::Partition;

namespace {

// Per-slot status bits (SourceSlot::flags is not wide enough to matter; we
// keep them in side bitsets inside the runner to keep SourceSlot pure data).
constexpr std::uint8_t kFwdFinal = 1;    // forward label finalized on this proxy
constexpr std::uint8_t kAccFinal = 2;    // dependency finalized on this proxy
constexpr std::uint8_t kEagerStaged = 4; // staged for eager (non-final) broadcast

// ---- Two-phase staged drain -----------------------------------------------
// Large rounds drain their worklist in parallel while staying bit-identical
// to the sequential drain. Phase A splits the (lid, sidx) entry list into
// fixed grain-sized chunks (thread-count independent) and, per chunk,
// snapshots + finalizes each entry and records its neighbor pushes, bucketed
// by the target lid's 64-aligned range. Phase B replays each range's pushes
// in global sequential order — chunk-index major, in-chunk push order minor
// — so every slot sees exactly the arithmetic sequence the sequential drain
// would have applied. Ranges are disjoint in everything a push mutates (the
// slot array is lid-major, dirty/dist-map/to_broadcast state is per-lid, and
// 64-lid alignment keeps substrate flag-bitset words range-private), so
// ranges can replay concurrently.
//
// Snapshot safety: Phase A reads every drained entry's slot before any push
// is applied, where the sequential drain interleaves pushes with later
// entries' reads. These agree on valid runs: the delayed-sync schedule fires
// an entry only when its label/dependency is final (Lemmas 2-6 — in
// particular tau_sv > tau_sw for an SP-DAG edge w->v, so same-round
// push-into-drained-entry events always hit an already-final slot and are
// either discarded by the stale-distance check or counted as anomalies).
// Runs that already violate the pipelining invariant (anomalies > 0) may
// count anomalies differently than the sequential drain; they are reported
// as broken either way.
//
// PushRec / ChunkRecs / the 64-lid range partition live in
// core/staged_drain.h, shared with the SBBC baseline's identical drain.
//
// ---- Direction optimization (forward phase) -------------------------------
// Dense rounds invert the drain: instead of iterating the frontier and
// relaxing out-edges (push), each 64-lid range scans its *targets* and
// gathers contributions from frontier in-neighbors (pull). Two bit planes
// drive the scan, both lid-major with source_words() words per lid:
//   avail    — bit (lid, sidx) set while the slot is NOT forward-finalized;
//              maintained by finalize_forward() on every drain path and
//              rebuilt from the kFwdFinal flags on checkpoint restore.
//   frontier — bit set for exactly this round's drained entries; cleared
//              before the round ends.
// A pull round finalizes the frontier first (Phase A, recording each
// entry's drain ordinal), then per target range intersects each
// in-neighbor's frontier row with the target's avail row, emits a PushRec
// per hit, sorts by (entry ordinal, target), and replays through the same
// combine_forward_impl as push mode. Because local adjacency is sorted
// ascending, push's (entry, edge-position) order IS (entry, target) order,
// so the replay sequence equals push's sequence restricted to
// not-yet-finalized targets — and on valid runs every omitted push is a
// stale contribution into a finalized slot, discarded with zero side
// effects (the d > dist check precedes everything; a non-stale push into a
// finalized slot is a pipelining violation). Results, stats (pull charges
// work_items analytically as the frontier's out-degree sum — push's
// per-edge count), wire traffic, and checkpoint bytes are therefore
// bit-identical to push; runs that are already broken (anomalies > 0) may
// count anomalies differently, as with the staged/sequential split above.
// Generation and replay fuse into one parallel pass: generation reads only
// frontier slots (avail = 0), replay writes only avail slots, and both
// planes are frozen between the Phase-A barrier and the end of the round.

// Checkpoint helpers: std::pair is not guaranteed trivially copyable, so
// (lid, sidx) worklists are serialized elementwise.
void write_pairs(util::SendBuffer& buf,
                 const std::vector<std::pair<graph::VertexId, std::uint32_t>>& pairs) {
  buf.write<std::uint64_t>(pairs.size());
  for (const auto& [lid, sidx] : pairs) {
    buf.write<graph::VertexId>(lid);
    buf.write<std::uint32_t>(sidx);
  }
}

void read_pairs(util::RecvBuffer& buf,
                std::vector<std::pair<graph::VertexId, std::uint32_t>>& pairs) {
  const auto n = buf.read<std::uint64_t>();
  pairs.clear();
  pairs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto lid = buf.read<graph::VertexId>();
    const auto sidx = buf.read<std::uint32_t>();
    pairs.emplace_back(lid, sidx);
  }
}

/// Packed gather CSR (MrbcOptions::packed_gather): a host-local copy of the
/// in-adjacency with 32-bit offsets instead of the master CSR's 64-bit
/// EdgeId keys — half the offset footprint on the pull scan, which keeps
/// more of the frontier plane cache-resident during the gather. Neighbor
/// order is copied verbatim from Graph::in_neighbors, so pull replays visit
/// sources in the identical order and results stay bit-identical. Built
/// lazily on a host's first pull round; push-only runs never pay for it.
struct PackedIn {
  std::vector<std::uint32_t> offsets;     ///< num_proxies + 1
  std::vector<graph::VertexId> sources;
  bool built = false;

  std::span<const graph::VertexId> neighbors(graph::VertexId t) const {
    return {sources.data() + offsets[t],
            static_cast<std::size_t>(offsets[t + 1] - offsets[t])};
  }
};

/// One batch's distributed execution: forward APSP then accumulation.
/// Checkpointable so that BspLoop can snapshot/roll back the whole batch
/// state (labels + round-local queues + substrate flags) for crash recovery.
class BatchRunner final : public sim::Checkpointable {
 public:
  BatchRunner(const Partition& part, std::vector<graph::VertexId> batch,
              const MrbcOptions& opts)
      : part_(part), batch_(std::move(batch)), opts_(opts), substrate_(part) {
    substrate_.set_delivery(opts_.cluster.delivery());
    if (opts_.cluster.membership != nullptr) {
      // Deaths declared in earlier batches persist: adopted shards stay
      // co-located with their adopter for the rest of the run.
      substrate_.set_placement(opts_.cluster.membership->logical_to_physical());
    }
    const HostId H = part_.num_hosts();
    const auto k = static_cast<std::uint32_t>(batch_.size());
    state_.reserve(H);
    masters_.resize(H);
    worklist_.resize(H);
    self_sched_.resize(H);
    staged_lids_.resize(H);
    anomalies_.assign(H, 0);
    host_active_.assign(H, 0);
    flags_.resize(H);
    avail_.resize(H);
    frontier_.resize(H);
    frontier_ord_.resize(H);
    last_pull_.assign(H, 0);
    local_edges_.assign(H, 0);
    live_indeg_.assign(H, 0);
    final_count_.resize(H);
    pull_rounds_.assign(H, 0);
    scratch_.resize(H);
    packed_in_.resize(H);
    for (HostId h = 0; h < H; ++h) {
      const auto& hg = part_.host(h);
      state_.emplace_back(hg.num_proxies(), k);
      flags_[h].assign(static_cast<std::size_t>(hg.num_proxies()) * k, 0);
      const std::uint32_t kw = state_[h].source_words();
      avail_[h].resize(static_cast<std::size_t>(hg.num_proxies()) * kw * 64);
      frontier_[h].resize(static_cast<std::size_t>(hg.num_proxies()) * kw * 64);
      frontier_ord_[h].assign(static_cast<std::size_t>(hg.num_proxies()) * k, 0);
      rebuild_avail(h);
      local_edges_[h] = hg.local.num_edges();
      for (graph::VertexId l = 0; l < hg.num_proxies(); ++l) {
        if (hg.is_master[l]) masters_[h].push_back(l);
      }
    }
  }

  sim::RunStats run_forward(const sim::LoopCheckpoint* resume = nullptr) {
    obs::Span phase_span(obs::Category::kAlgo, "forward");
    // Step 3 of Alg. 3, restricted to the batch sources (Lemma 8): each
    // source's master proxy starts with (0, s) and sigma 1. On a cold
    // restart the checkpoint already contains the seeded (and advanced)
    // state, so re-seeding would corrupt it.
    if (resume == nullptr) {
      for (std::uint32_t sidx = 0; sidx < batch_.size(); ++sidx) {
        const graph::VertexId gv = batch_[sidx];
        const HostId h = part_.master_host(gv);
        const graph::VertexId lid = part_.local_id(h, gv);
        state_[h].update_distance(lid, sidx, 0);
        state_[h].slot(lid, sidx).sigma = 1.0;
      }
    }
    ForwardAccessor acc{*this};
    sim::BspLoop loop(part_.num_hosts(), opts_.cluster);
    sim::RunStats stats = loop.run(
        [&](std::size_t round) {
          current_round_ = static_cast<std::uint32_t>(round);
          // Reduce first: every mirror contribution of this round must be
          // at the master BEFORE the delayed-sync rule is evaluated, or an
          // entry could fire with an incomplete position or sigma.
          comm::SyncStats s = substrate_.reduce_var(acc);
          // Host-disjoint (each call touches only host h's state and sync
          // flags), so schedule alongside the cluster's host parallelism.
          util::for_each_index(part_.num_hosts(), opts_.cluster.parallel_hosts,
                               [&](std::size_t h) {
                                 schedule_forward(static_cast<HostId>(h), current_round_);
                               });
          s += substrate_.broadcast_var(acc);
          return s;
        },
        [&](HostId h, std::size_t round) {
          return compute_forward(h, static_cast<std::uint32_t>(round));
        },
        [&] { return substrate_.any_pending(); }, this, resume);
    forward_rounds_ = static_cast<std::uint32_t>(stats.rounds);
    return stats;
  }

  sim::RunStats run_backward(const sim::LoopCheckpoint* resume = nullptr) {
    if (resume == nullptr) {
      // Diameter finalization: seed the backward pass from the forward
      // round count (the "R" every host agreed on at quiescence). A cold
      // restart restores the checkpoint instead — its acc_sent cursors and
      // queues already reflect the seeding (and any progress since).
      const std::uint32_t R = forward_rounds_;
      obs::Span finalize_span(obs::Category::kAlgo, "finalize");
      util::for_each_index(part_.num_hosts(), opts_.cluster.parallel_hosts, [&](std::size_t h) {
        schedule_backward(static_cast<HostId>(h), 1, R);
      });
    }
    obs::Span phase_span(obs::Category::kAlgo, "backward");
    BackwardAccessor acc{*this};
    sim::BspLoop loop(part_.num_hosts(), opts_.cluster);
    return loop.run(
        [&](std::size_t) {
          comm::SyncStats s = substrate_.reduce_var(acc);
          s += substrate_.broadcast_var(acc);
          return s;
        },
        [&](HostId h, std::size_t round) {
          // forward_rounds_ is read per call, not captured: on a resumed
          // backward phase its restored value only exists after the loop's
          // restore_checkpoint runs.
          return compute_backward(h, static_cast<std::uint32_t>(round), forward_rounds_);
        },
        [&] { return substrate_.any_pending(); }, this, resume);
  }

  /// Permanent host loss: co-locate the adopted logical shards with their
  /// adopter so pair traffic between them stops being wire traffic.
  void on_membership_change(const sim::Membership& membership) override {
    substrate_.set_placement(membership.logical_to_physical());
  }

  // ---- Checkpointing ------------------------------------------------------
  // Everything a replayed round can read must round-trip: label state,
  // round-local queues, the batch's status flags, and the substrate's sync
  // flags + delivery sequence numbers. Topology (part_, masters_) is
  // immutable and stays out of the snapshot.

  void save_checkpoint(util::SendBuffer& buf) const override {
    substrate_.save_state(buf);
    const HostId H = part_.num_hosts();
    for (HostId h = 0; h < H; ++h) {
      state_[h].save(buf);
      buf.write_vector(flags_[h]);
      write_pairs(buf, worklist_[h]);
      write_pairs(buf, self_sched_[h]);
      buf.write_vector(staged_lids_[h]);
    }
    buf.write_vector(anomalies_);
    buf.write_vector(host_active_);
    buf.write<std::uint32_t>(forward_rounds_);
    buf.write<std::uint32_t>(current_round_);
  }

  void restore_checkpoint(util::RecvBuffer& buf) override {
    substrate_.restore_state(buf);
    const HostId H = part_.num_hosts();
    for (HostId h = 0; h < H; ++h) {
      state_[h].restore(buf);
      flags_[h] = buf.read_vector<std::uint8_t>();
      read_pairs(buf, worklist_[h]);
      read_pairs(buf, self_sched_[h]);
      staged_lids_[h] = buf.read_vector<graph::VertexId>();
      // The direction-optimization planes are derived state: avail mirrors
      // the restored kFwdFinal flags, the frontier is all-zero between
      // rounds (restores happen at sync boundaries). Snapshot bytes are
      // untouched by the direction machinery.
      rebuild_avail(h);
      frontier_[h].reset_all();
    }
    anomalies_ = buf.read_vector<std::size_t>();
    host_active_ = buf.read_vector<std::uint8_t>();
    forward_rounds_ = buf.read<std::uint32_t>();
    current_round_ = buf.read<std::uint32_t>();
  }

  /// Adds this batch's dependencies into the global result.
  void harvest(BcResult& out) const {
    const std::size_t base = out.sources.size();
    out.sources.insert(out.sources.end(), batch_.begin(), batch_.end());
    if (opts_.collect_tables) {
      out.dist.resize(base + batch_.size(),
                      std::vector<std::uint32_t>(part_.num_global_vertices(), kInfDist));
      out.sigma.resize(base + batch_.size(),
                       std::vector<double>(part_.num_global_vertices(), 0.0));
      out.delta.resize(base + batch_.size(),
                       std::vector<double>(part_.num_global_vertices(), 0.0));
    }
    for (HostId h = 0; h < part_.num_hosts(); ++h) {
      const auto& hg = part_.host(h);
      for (graph::VertexId lid : masters_[h]) {
        const graph::VertexId gv = hg.local_to_global[lid];
        for (std::uint32_t sidx = 0; sidx < batch_.size(); ++sidx) {
          const SourceSlot& s = state_[h].slot(lid, sidx);
          if (batch_[sidx] != gv && s.dist != kInfDist) out.bc[gv] += s.delta;
          if (opts_.collect_tables) {
            out.dist[base + sidx][gv] = s.dist;
            out.sigma[base + sidx][gv] = s.sigma;
            out.delta[base + sidx][gv] = s.delta;
          }
        }
      }
    }
  }

  std::size_t anomalies() const {
    std::size_t total = 0;
    for (std::size_t a : anomalies_) total += a;
    return total;
  }

  /// Host-rounds the forward phase drained in pull mode (diagnostic).
  std::size_t pull_rounds() const {
    std::size_t total = 0;
    for (std::size_t p : pull_rounds_) total += p;
    return total;
  }

 private:
  using Word = util::DynamicBitset::Word;

  std::uint8_t& flags(HostId h, graph::VertexId lid, std::uint32_t sidx) {
    return flags_[h][static_cast<std::size_t>(lid) * batch_.size() + sidx];
  }

  /// Sets kFwdFinal, clears the slot's avail bit, and maintains the live
  /// in-degree (the heuristic's pull scan cost). Every forward drain path
  /// finalizes through this so the pull plane stays exact. The avail word
  /// is shared by up to 64 sources of one lid and drain entries of the same
  /// lid can land in different chunks, so the updates are atomic RMWs; AND
  /// and ADD are commutative, so the results are order-independent, and
  /// exactly one finalize observes a lid's final count reaching k — that
  /// one retires the lid's in-degree from live_indeg_.
  void finalize_forward(HostId h, graph::VertexId lid, std::uint32_t sidx) {
    flags(h, lid, sidx) |= kFwdFinal;
    const std::uint32_t kw = state_[h].source_words();
    Word& w = avail_[h].words()[static_cast<std::size_t>(lid) * kw + sidx / 64];
    std::atomic_ref<Word>(w).fetch_and(~(Word{1} << (sidx % 64)), std::memory_order_relaxed);
    const std::uint32_t prior = std::atomic_ref<std::uint32_t>(final_count_[h][lid])
                                    .fetch_add(1, std::memory_order_relaxed);
    if (prior + 1 == static_cast<std::uint32_t>(batch_.size())) {
      const auto deg = static_cast<std::uint64_t>(part_.host(h).local.in_degree(lid));
      std::atomic_ref<std::uint64_t>(live_indeg_[h]).fetch_sub(deg, std::memory_order_relaxed);
    }
  }

  /// Derives the avail plane, per-lid final counts, and live in-degree from
  /// the kFwdFinal flags (ctor and restore).
  void rebuild_avail(HostId h) {
    const std::uint32_t k = static_cast<std::uint32_t>(batch_.size());
    const std::uint32_t kw = state_[h].source_words();
    auto& words = avail_[h].words();
    std::fill(words.begin(), words.end(), Word{0});
    const VertexId np = part_.host(h).num_proxies();
    final_count_[h].assign(np, 0);
    live_indeg_[h] = 0;
    for (VertexId lid = 0; lid < np; ++lid) {
      for (std::uint32_t sidx = 0; sidx < k; ++sidx) {
        if (!(flags(h, lid, sidx) & kFwdFinal)) {
          words[static_cast<std::size_t>(lid) * kw + sidx / 64] |= Word{1} << (sidx % 64);
        } else {
          ++final_count_[h][lid];
        }
      }
      if (final_count_[h][lid] < k) {
        live_indeg_[h] += static_cast<std::uint64_t>(part_.host(h).local.in_degree(lid));
      }
    }
  }

  /// Out-degree sum of this round's drain entries: the push cost of the
  /// round, and exactly what the push drain charges as work_items. u64
  /// addition is associative, so the chunked reduction is exact and
  /// thread-count independent.
  std::uint64_t frontier_degree(HostId h, std::size_t total, std::size_t grain) {
    const auto& hg = part_.host(h);
    return util::ThreadPool::global().parallel_reduce(
        0, total, grain, std::uint64_t{0},
        [&](std::size_t ei) {
          return static_cast<std::uint64_t>(hg.local.out_degree(drain_entry(h, ei).first));
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  }

  // ---- Forward phase ----------------------------------------------------

  /// Applies one incoming (dist, sigma) contribution to a proxy — the
  /// lines 11-17 update rules of Alg. 3 in proxy form. The (anoms, staged,
  /// ord) tail routes the two side effects that are not per-target-lid —
  /// the anomaly counter and the eager staging list — to per-range
  /// accumulators during a staged replay; the comm-phase entry point below
  /// binds them to the host's direct state.
  void combine_forward_impl(HostId h, graph::VertexId lid, std::uint32_t sidx, std::uint32_t d,
                            double sigma, std::size_t& anoms, std::vector<OrdLid>* staged,
                            std::uint64_t ord) {
    HostState& st = state_[h];
    SourceSlot& s = st.slot(lid, sidx);
    if (d > s.dist) return;  // stale
    if (flags(h, lid, sidx) & kFwdFinal) {
      ++anoms;  // update after finalization: forbidden by Lemmas 2-5
      return;
    }
    if (d < s.dist) {
      st.update_distance(lid, sidx, d);
      s.sigma = sigma;
    } else {
      s.sigma += sigma;
    }
    if (part_.host(h).is_master[lid]) {
      if (!opts_.delayed_sync) stage_eager(h, lid, sidx, staged, ord);
    } else {
      st.mark_dirty(lid, sidx);
      substrate_.flag_reduce(h, lid);
    }
  }

  void combine_forward(HostId h, graph::VertexId lid, std::uint32_t sidx, std::uint32_t d,
                       double sigma) {
    combine_forward_impl(h, lid, sidx, d, sigma, anomalies_[h], nullptr, 0);
  }

  void stage_eager(HostId h, graph::VertexId lid, std::uint32_t sidx,
                   std::vector<OrdLid>* staged = nullptr, std::uint64_t ord = 0) {
    if (flags(h, lid, sidx) & kEagerStaged) return;
    flags(h, lid, sidx) |= kEagerStaged;
    if (state_[h].to_broadcast[lid].empty()) {
      if (staged) {
        staged->push_back({ord, lid});
      } else {
        staged_lids_[h].push_back(lid);
      }
    }
    state_[h].to_broadcast[lid].push_back({sidx, false});
    substrate_.flag_broadcast(h, lid);
  }

  /// Flushes the entries of one master vertex whose pipelined send round
  /// has arrived (the delayed-synchronization rule, Section 4.3). The BSP
  /// fire round is d + l_v(d, s) + 1: one round later than the CONGEST
  /// schedule because a contribution computed on a mirror host reaches the
  /// master via the next round's reduce, whereas CONGEST processors receive
  /// within the sending round. The uniform +1 shift preserves every
  /// pipelining invariant (arrival f_x + 2 <= fire f_v + 1 follows from the
  /// CONGEST guarantee f_x < f_v). Entries fire in lexicographic order, so
  /// the next unsent entry is always at index fwd_sent.
  void flush_due_forward(HostId h, graph::VertexId lid, std::uint32_t round) {
    HostState& st = state_[h];
    while (st.fwd_sent[lid] < st.entry_count(lid)) {
      const auto [d, sidx] = st.nth_entry(lid, st.fwd_sent[lid]);
      const std::uint32_t pos = st.fwd_sent[lid] + 2;  // l_v(d,s) + 1
      if (d + pos > round) break;
      if (d + pos < round) ++anomalies_[h];  // a send round was skipped
      if (st.to_broadcast[lid].empty()) staged_lids_[h].push_back(lid);
      st.to_broadcast[lid].push_back({sidx, true});
      substrate_.flag_broadcast(h, lid);
      self_sched_[h].push_back({lid, sidx});
      ++st.fwd_sent[lid];
    }
  }

  /// Per-round pass over all masters, run between the reduce and broadcast
  /// phases of round `round`'s sync: with every contribution of the round
  /// already reduced, fire everything due. This is where the paper's rule
  /// "synchronize d and sigma in round r = d + l(d,s)" is evaluated.
  void schedule_forward(HostId h, std::uint32_t round) {
    HostState& st = state_[h];
    bool active = false;
    for (graph::VertexId lid : masters_[h]) {
      flush_due_forward(h, lid, round);
      active = active || st.fwd_sent[lid] < st.entry_count(lid);
    }
    host_active_[h] = active;
  }

  /// One drained entry: position e in the concatenation worklist ++
  /// self_sched (the exact sequential drain order).
  std::pair<graph::VertexId, std::uint32_t> drain_entry(HostId h, std::size_t e) const {
    const auto& wl = worklist_[h];
    return e < wl.size() ? wl[e] : self_sched_[h][e - wl.size()];
  }

  std::size_t drain_size(HostId h) const { return worklist_[h].size() + self_sched_[h].size(); }

  /// Phase A shared by both phases: chunk the entry list, run
  /// `snapshot(chunk_recs, entry_index)` per entry (it finalizes the entry
  /// and appends its pushes), bucket each chunk's pushes by target range.
  /// The chunk and record buffers are pooled per host (DrainScratch) and
  /// reused round after round.
  template <typename SnapshotFn>
  std::span<ChunkRecs> stage_pushes(HostId h, std::size_t total, std::size_t grain,
                                    std::size_t num_ranges, SnapshotFn&& snapshot) {
    DrainScratch& sc = scratch_[h];
    const std::size_t n = util::ThreadPool::chunk_count(total, grain);
    if (sc.chunks.size() < n) sc.chunks.resize(n);
    if (sc.raw.size() < n) sc.raw.resize(n);
    util::ThreadPool::global().parallel_for_chunks(
        0, total, grain, [&](std::size_t c, std::size_t b, std::size_t e) {
          ChunkRecs& ch = sc.chunks[c];
          ch.work_items = 0;
          std::vector<PushRec>& recs = sc.raw[c];
          recs.clear();
          for (std::size_t ei = b; ei < e; ++ei) snapshot(ch, recs, ei);
          ch.bucket_by_range(recs, num_ranges);
        });
    return {sc.chunks.data(), n};
  }

  /// Phase B shared by both phases: replay every range's pushes in
  /// (chunk, in-chunk) order — the sequential push order — then fold the
  /// per-range side accumulators back deterministically.
  template <typename ReplayFn>
  sim::HostWork replay_pushes(HostId h, std::span<const ChunkRecs> chunks,
                              std::size_t num_ranges, ReplayFn&& replay) {
    const bool eager = !opts_.delayed_sync;
    std::vector<std::size_t> range_anoms(num_ranges, 0);
    std::vector<std::vector<OrdLid>> range_staged(eager ? num_ranges : 0);
    util::ThreadPool::global().parallel_for(0, num_ranges, 1, [&](std::size_t r) {
      std::size_t anoms = 0;
      std::vector<OrdLid>* staged = eager ? &range_staged[r] : nullptr;
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        const ChunkRecs& ch = chunks[c];
        for (std::uint32_t i = ch.starts[r]; i < ch.starts[r + 1]; ++i) {
          replay(ch.sorted[i], anoms, staged, push_ordinal(c, ch.sorted[i].ord));
        }
      }
      range_anoms[r] = anoms;
    });
    sim::HostWork w;
    for (const ChunkRecs& ch : chunks) w.work_items += ch.work_items;
    for (std::size_t a : range_anoms) anomalies_[h] += a;
    if (eager) {
      std::vector<OrdLid> all;
      for (const auto& v : range_staged) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      for (const auto& [ord, lid] : all) staged_lids_[h].push_back(lid);
    }
    return w;
  }

  std::size_t num_replay_ranges(HostId h) const {
    return num_drain_ranges(part_.host(h).num_proxies());
  }

  /// kAuto direction decision for one staged forward round. All inputs are
  /// integers derived from the drain list and the immutable local topology,
  /// so every thread count (and a crash-replayed round) picks the same
  /// direction. `fdeg` returns the frontier's out-degree sum when computed.
  bool choose_pull(HostId h, std::size_t total, std::size_t grain, std::uint64_t& fdeg) {
    bool pull = false;
    switch (opts_.direction) {
      case Direction::kPush:
        break;
      case Direction::kPull:
        fdeg = frontier_degree(h, total, grain);
        pull = true;
        break;
      case Direction::kAuto: {
        if (local_edges_[h] == 0) break;
        fdeg = frontier_degree(h, total, grain);
        // Scan cost of a pull: the in-degree sum of lids with any non-final
        // source (fully-final lids are skipped in O(1) via their zero avail
        // word). Read at the round boundary, so the value is exact and
        // thread-count independent.
        const double scan = static_cast<double>(live_indeg_[h]);
        const double threshold =
            last_pull_[h] ? scan / opts_.pull_beta : scan / opts_.pull_alpha;
        pull = static_cast<double>(fdeg) >= threshold;
        break;
      }
    }
    last_pull_[h] = pull ? 1 : 0;
    return pull;
  }

  /// Packed gather CSR for host h, built on first use. Returns nullptr when
  /// the option is off or the local edge count overflows 32-bit offsets
  /// (the gather then walks the master CSR — same order, same bits).
  const PackedIn* packed_in(HostId h) {
    if (!opts_.packed_gather) return nullptr;
    const auto& local = part_.host(h).local;
    if (local.num_edges() > 0xFFFFFFFFull) return nullptr;
    PackedIn& p = packed_in_[h];
    if (!p.built) {
      const graph::VertexId np = local.num_vertices();
      p.offsets.assign(static_cast<std::size_t>(np) + 1, 0);
      p.sources.reserve(static_cast<std::size_t>(local.num_edges()));
      for (graph::VertexId t = 0; t < np; ++t) {
        const auto in = local.in_neighbors(t);
        p.sources.insert(p.sources.end(), in.begin(), in.end());
        p.offsets[t + 1] = static_cast<std::uint32_t>(p.sources.size());
      }
      p.built = true;
    }
    return &p;
  }

  /// Pull drain of one staged forward round; see the direction-optimization
  /// design comment above for why the replay is bit-identical to push.
  sim::HostWork compute_forward_pull(HostId h, std::size_t total, std::size_t grain,
                                     std::uint64_t fdeg) {
    HostState& st = state_[h];
    const auto& hg = part_.host(h);
    const std::uint32_t k = static_cast<std::uint32_t>(batch_.size());
    const std::uint32_t kw = st.source_words();
    auto& avail = avail_[h].words();
    auto& frontier = frontier_[h].words();
    auto& ford = frontier_ord_[h];
    // Phase A: finalize the frontier, publish its bits and drain ordinals.
    // OR into the frontier word is atomic for the same reason finalize's
    // AND is: up to 64 sources of one lid share a word across chunks.
    util::ThreadPool::global().parallel_for(0, total, grain, [&](std::size_t ei) {
      const auto [lid, sidx] = drain_entry(h, ei);
      finalize_forward(h, lid, sidx);
      Word& w = frontier[static_cast<std::size_t>(lid) * kw + sidx / 64];
      std::atomic_ref<Word>(w).fetch_or(Word{1} << (sidx % 64), std::memory_order_relaxed);
      ford[static_cast<std::size_t>(lid) * k + sidx] = static_cast<std::uint32_t>(ei);
    });
    // Phases B+C fused per range: gather hit keys, sort into the sequential
    // push order, replay. Generation reads only frontier slots, replay
    // writes only avail slots — disjoint by construction, so no barrier is
    // needed between a range's generation and another range's replay. A hit
    // is recorded as the bare (drain ordinal << 32 | target) u64 — the
    // replay ordinal itself — and the (dist, sigma) snapshot is loaded at
    // replay time: frontier slots stay frozen for the whole pass, so the
    // deferred load reads exactly what Phase-A staging would have copied,
    // and the hot sort runs over 8-byte keys instead of full records.
    const std::size_t num_ranges = num_replay_ranges(h);
    const bool eager = !opts_.delayed_sync;
    const PackedIn* pk = packed_in(h);  // built here, before ranges fan out
    DrainScratch& sc = scratch_[h];
    if (sc.range_keys.size() < num_ranges) sc.range_keys.resize(num_ranges);
    std::vector<std::size_t> range_anoms(num_ranges, 0);
    std::vector<std::vector<OrdLid>> range_staged(eager ? num_ranges : 0);
    util::ThreadPool::global().parallel_for(0, num_ranges, 1, [&](std::size_t r) {
      std::vector<std::uint64_t>& keys = sc.range_keys[r];
      keys.clear();
      const auto tb = static_cast<graph::VertexId>(r << kRangeShift);
      const auto te = static_cast<graph::VertexId>(
          std::min<std::size_t>(hg.num_proxies(), (r + 1) << kRangeShift));
      for (graph::VertexId t = tb; t < te; ++t) {
        const Word* av = avail.data() + static_cast<std::size_t>(t) * kw;
        if (kw == 1) {
          // Dominant case (batch <= 64 sources): one word per lid, keep the
          // intersection inline instead of a per-edge kernel call.
          const Word a = av[0];
          if (a == 0) continue;
          const std::span<const graph::VertexId> in =
              pk != nullptr ? pk->neighbors(t) : hg.local.in_neighbors(t);
          for (const graph::VertexId wv : in) {
            Word m = frontier[wv] & a;
            while (m != 0) {
              const auto sidx = static_cast<std::uint32_t>(__builtin_ctzll(m));
              m &= m - 1;
              const std::uint64_t ord = ford[static_cast<std::size_t>(wv) * k + sidx];
              keys.push_back((ord << 32) | t);
            }
          }
        } else {
          if (util::bitwords::find_nonzero(av, kw, 0) == kw) continue;
          const std::span<const graph::VertexId> in =
              pk != nullptr ? pk->neighbors(t) : hg.local.in_neighbors(t);
          for (const graph::VertexId wv : in) {
            const Word* fr = frontier.data() + static_cast<std::size_t>(wv) * kw;
            if (!util::bitwords::any_intersect(fr, av, kw)) continue;
            for (std::uint32_t j = 0; j < kw; ++j) {
              Word m = fr[j] & av[j];
              while (m != 0) {
                const auto sidx = j * 64 + static_cast<std::uint32_t>(__builtin_ctzll(m));
                m &= m - 1;
                const std::uint64_t ord = ford[static_cast<std::size_t>(wv) * k + sidx];
                keys.push_back((ord << 32) | t);
              }
            }
          }
        }
      }
      // Keys are unique — ord pins (source lid, sidx), and a lid pushes at
      // most once per target — so (ord, target) order is total.
      std::sort(keys.begin(), keys.end());
      std::size_t anoms = 0;
      std::vector<OrdLid>* staged = eager ? &range_staged[r] : nullptr;
      for (const std::uint64_t key : keys) {
        const auto t = static_cast<graph::VertexId>(key & 0xFFFFFFFFu);
        const auto [wv, sidx] = drain_entry(h, key >> 32);
        const SourceSlot& sw = st.slot(wv, sidx);
        combine_forward_impl(h, t, sidx, sw.dist + 1, sw.sigma, anoms, staged, key);
      }
      range_anoms[r] = anoms;
    });
    for (std::size_t a : range_anoms) anomalies_[h] += a;
    if (eager) {
      std::vector<OrdLid> all;
      for (const auto& v : range_staged) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      for (const auto& [ord, lid] : all) staged_lids_[h].push_back(lid);
    }
    // Clear the frontier rows (every set bit in a touched row was set this
    // round). Entries sharing a lid re-clear the same words — idempotent.
    for (std::size_t ei = 0; ei < total; ++ei) {
      const auto lid = drain_entry(h, ei).first;
      std::fill_n(frontier.begin() + static_cast<std::size_t>(lid) * kw, kw, Word{0});
    }
    ++pull_rounds_[h];
    sim::HostWork w;
    w.work_items = fdeg;
    return w;
  }

  sim::HostWork compute_forward(HostId h, std::uint32_t round) {
    HostState& st = state_[h];
    const auto& hg = part_.host(h);
    sim::HostWork w;
    const std::size_t total = drain_size(h);
    const std::size_t grain = std::max<std::size_t>(opts_.drain_grain, 1);
    // Drain finalized labels delivered this round (broadcast arrivals on
    // mirrors + the master's own scheduled entries): each is the CONGEST
    // "send along all out-edges", performed as local proxy updates.
    if (total > grain) {
      std::uint64_t fdeg = 0;
      if (choose_pull(h, total, grain, fdeg)) {
        w = compute_forward_pull(h, total, grain, fdeg);
      } else {
        const std::size_t num_ranges = num_replay_ranges(h);
        std::span<ChunkRecs> chunks = stage_pushes(
            h, total, grain, num_ranges,
            [&](ChunkRecs& ch, std::vector<PushRec>& recs, std::size_t ei) {
              const auto [lid, sidx] = drain_entry(h, ei);
              finalize_forward(h, lid, sidx);
              const SourceSlot s = st.slot(lid, sidx);
              for (graph::VertexId tl : hg.local.out_neighbors(lid)) {
                recs.push_back(PushRec{tl, sidx, s.dist + 1, s.sigma,
                                       static_cast<std::uint32_t>(recs.size())});
                ++ch.work_items;
              }
            });
        w = replay_pushes(h, chunks, num_ranges,
                          [&](const PushRec& p, std::size_t& anoms, std::vector<OrdLid>* staged,
                              std::uint64_t ord) {
                            combine_forward_impl(h, p.target, p.sidx, p.dist, p.value, anoms,
                                                 staged, ord);
                          });
      }
    } else {
      auto drain = [&](const std::vector<std::pair<graph::VertexId, std::uint32_t>>& list) {
        for (const auto& [lid, sidx] : list) {
          finalize_forward(h, lid, sidx);
          const SourceSlot s = st.slot(lid, sidx);
          for (graph::VertexId tl : hg.local.out_neighbors(lid)) {
            combine_forward(h, tl, sidx, s.dist + 1, s.sigma);
            ++w.work_items;
          }
        }
      };
      drain(worklist_[h]);
      drain(self_sched_[h]);
    }
    worklist_[h].clear();
    self_sched_[h].clear();
    for (graph::VertexId lid : staged_lids_[h]) {
      st.to_broadcast[lid].clear();
      // clear eager-staging marks
      for (std::uint32_t sidx = 0; sidx < batch_.size(); ++sidx) {
        flags(h, lid, sidx) &= static_cast<std::uint8_t>(~kEagerStaged);
      }
    }
    staged_lids_[h].clear();
    (void)round;
    // Re-evaluate after the drain: local pushes can seed brand-new entries
    // at same-host masters without setting any sync flag, and the loop
    // must not quiesce while any master still has unsent entries.
    bool active = false;
    for (graph::VertexId lid : masters_[h]) {
      if (st.fwd_sent[lid] < st.entry_count(lid)) {
        active = true;
        break;
      }
    }
    w.active = active;
    return w;
  }

  // ---- Accumulation phase -------------------------------------------------

  /// tau_sv is re-derived from the final list (Section 4.3: "we can derive
  /// the round in which sigma was sent using d_sv in the map ... and the
  /// number of already sent dependencies"). Entries fire in reverse
  /// lexicographic order: A_sv = R - tau_sv + 1.
  void schedule_backward(HostId h, std::uint32_t next_round, std::uint32_t R) {
    HostState& st = state_[h];
    bool active = false;
    for (graph::VertexId lid : masters_[h]) {
      const std::size_t count = st.entry_count(lid);
      while (st.acc_sent[lid] < count) {
        const std::size_t idx = count - 1 - st.acc_sent[lid];
        const auto [d, sidx] = st.nth_entry(lid, idx);
        // tau matches the shifted forward fire round: d + position + 1.
        const std::uint32_t tau = d + static_cast<std::uint32_t>(idx) + 2;
        const std::uint32_t fire = (R >= tau ? R - tau : 0) + 1;
        if (fire > next_round) break;
        if (fire < next_round) ++anomalies_[h];
        if (st.to_broadcast[lid].empty()) staged_lids_[h].push_back(lid);
        st.to_broadcast[lid].push_back({sidx, true});
        substrate_.flag_broadcast(h, lid);
        self_sched_[h].push_back({lid, sidx});
        ++st.acc_sent[lid];
      }
      active = active || st.acc_sent[lid] < count;
    }
    host_active_[h] = active;
  }

  void combine_backward_impl(HostId h, graph::VertexId lid, std::uint32_t sidx,
                             double contribution, std::size_t& anoms,
                             std::vector<OrdLid>* staged, std::uint64_t ord) {
    HostState& st = state_[h];
    if (flags(h, lid, sidx) & kAccFinal) {
      ++anoms;  // dependency arrived after its vertex fired
      return;
    }
    st.slot(lid, sidx).delta += contribution;
    if (part_.host(h).is_master[lid]) {
      if (!opts_.delayed_sync) stage_eager(h, lid, sidx, staged, ord);
    } else {
      st.mark_dirty(lid, sidx);
      substrate_.flag_reduce(h, lid);
    }
  }

  void combine_backward(HostId h, graph::VertexId lid, std::uint32_t sidx, double contribution) {
    combine_backward_impl(h, lid, sidx, contribution, anomalies_[h], nullptr, 0);
  }

  sim::HostWork compute_backward(HostId h, std::uint32_t round, std::uint32_t R) {
    HostState& st = state_[h];
    const auto& hg = part_.host(h);
    sim::HostWork w;
    // A finalized dependency delta_sv turns into m = (1 + delta)/sigma sent
    // to the predecessors of v in s's SP DAG; predecessors are recognized
    // on each host by dist(w) + 1 == dist(v) (Alg. 5 step 7).
    //
    // The staged path is snapshot-safe here because replay only mutates
    // delta — the dist/sigma a Phase-A snapshot reads are frozen for the
    // whole backward phase.
    const std::size_t total = drain_size(h);
    const std::size_t grain = std::max<std::size_t>(opts_.drain_grain, 1);
    if (total > grain) {
      const std::size_t num_ranges = num_replay_ranges(h);
      std::span<ChunkRecs> chunks = stage_pushes(
          h, total, grain, num_ranges,
          [&](ChunkRecs& ch, std::vector<PushRec>& recs, std::size_t ei) {
            const auto [lid, sidx] = drain_entry(h, ei);
            flags(h, lid, sidx) |= kAccFinal;
            const SourceSlot& sv = st.slot(lid, sidx);
            if (sv.dist == kInfDist || sv.dist == 0 || sv.sigma == 0.0) return;
            const double m = (1.0 + sv.delta) / sv.sigma;
            for (graph::VertexId wl : hg.local.in_neighbors(lid)) {
              const SourceSlot& sw = st.slot(wl, sidx);
              if (sw.dist != kInfDist && sw.dist + 1 == sv.dist) {
                recs.push_back(
                    PushRec{wl, sidx, 0, sw.sigma * m, static_cast<std::uint32_t>(recs.size())});
              }
              ++ch.work_items;
            }
          });
      w = replay_pushes(h, chunks, num_ranges,
                        [&](const PushRec& p, std::size_t& anoms, std::vector<OrdLid>* staged,
                            std::uint64_t ord) {
                          combine_backward_impl(h, p.target, p.sidx, p.value, anoms, staged, ord);
                        });
    } else {
      auto drain = [&](const std::vector<std::pair<graph::VertexId, std::uint32_t>>& list) {
        for (const auto& [lid, sidx] : list) {
          flags(h, lid, sidx) |= kAccFinal;
          const SourceSlot& sv = st.slot(lid, sidx);
          if (sv.dist == kInfDist || sv.dist == 0 || sv.sigma == 0.0) continue;
          const double m = (1.0 + sv.delta) / sv.sigma;
          for (graph::VertexId wl : hg.local.in_neighbors(lid)) {
            const SourceSlot& sw = st.slot(wl, sidx);
            if (sw.dist != kInfDist && sw.dist + 1 == sv.dist) {
              combine_backward(h, wl, sidx, sw.sigma * m);
            }
            ++w.work_items;
          }
        }
      };
      drain(worklist_[h]);
      drain(self_sched_[h]);
    }
    worklist_[h].clear();
    self_sched_[h].clear();
    for (graph::VertexId lid : staged_lids_[h]) {
      st.to_broadcast[lid].clear();
      for (std::uint32_t sidx = 0; sidx < batch_.size(); ++sidx) {
        flags(h, lid, sidx) &= static_cast<std::uint8_t>(~kEagerStaged);
      }
    }
    staged_lids_[h].clear();
    schedule_backward(h, round + 1, R);
    w.active = host_active_[h];
    return w;
  }

  // ---- Sync accessors -----------------------------------------------------

  // Wire fields go through the mode-aware codec: entry counts are
  // metadata, source indices and distances are small payload integers
  // (varints in kFull), sigma/delta doubles use the tagged-integral f64
  // encoding — forward-phase sigmas are integral path counts, so most of
  // them shrink from 8 wire bytes to one or two. Dirty-source iteration
  // order is part of the reduce arithmetic and is never re-sorted for the
  // wire: compression must not change floating-point apply order.

  struct ForwardAccessor {
    BatchRunner& r;

    void serialize_reduce(HostId h, graph::VertexId lid, comm::CodecWriter& buf) {
      HostState& st = r.state_[h];
      auto& dirty = st.dirty_sources(lid);
      buf.meta_u32(static_cast<std::uint32_t>(dirty.size()));
      for (std::uint32_t sidx : dirty) {
        const SourceSlot s = st.slot(lid, sidx);
        buf.value_u32(sidx);
        buf.value_u32(s.dist);
        buf.f64(s.sigma);
        // Gluon reduce-reset: the mirror's partial returns to identity.
        st.clear_distance(lid, sidx);
        st.slot(lid, sidx).sigma = 0.0;
      }
      st.clear_dirty(lid);
    }

    void apply_reduce(HostId h, graph::VertexId lid, comm::CodecReader& buf) {
      const auto n = buf.meta_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto sidx = buf.value_u32();
        const auto d = buf.value_u32();
        const auto sigma = buf.f64();
        r.combine_forward(h, lid, sidx, d, sigma);
      }
    }

    void serialize_broadcast(HostId h, graph::VertexId lid, comm::CodecWriter& buf) {
      const HostState& st = r.state_[h];
      const auto& staged = st.to_broadcast[lid];
      buf.meta_u32(static_cast<std::uint32_t>(staged.size()));
      for (const auto& [sidx, is_final] : staged) {
        const SourceSlot& s = st.slot(lid, sidx);
        buf.value_u32(sidx);
        buf.value_u32(s.dist);
        buf.f64(s.sigma);
        buf.u8(is_final ? 1 : 0);
      }
    }

    void apply_broadcast(HostId h, graph::VertexId lid, comm::CodecReader& buf) {
      HostState& st = r.state_[h];
      const auto n = buf.meta_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto sidx = buf.value_u32();
        const auto d = buf.value_u32();
        const auto sigma = buf.f64();
        const auto is_final = buf.u8();
        if (!is_final) continue;  // eager-mode traffic only
        st.update_distance(lid, sidx, d);
        st.slot(lid, sidx).sigma = sigma;
        r.worklist_[h].push_back({lid, sidx});
      }
    }
  };

  struct BackwardAccessor {
    BatchRunner& r;

    void serialize_reduce(HostId h, graph::VertexId lid, comm::CodecWriter& buf) {
      HostState& st = r.state_[h];
      auto& dirty = st.dirty_sources(lid);
      buf.meta_u32(static_cast<std::uint32_t>(dirty.size()));
      for (std::uint32_t sidx : dirty) {
        buf.value_u32(sidx);
        buf.f64(st.slot(lid, sidx).delta);
        st.slot(lid, sidx).delta = 0.0;  // reduce-reset
      }
      st.clear_dirty(lid);
    }

    void apply_reduce(HostId h, graph::VertexId lid, comm::CodecReader& buf) {
      const auto n = buf.meta_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto sidx = buf.value_u32();
        const auto contribution = buf.f64();
        r.combine_backward(h, lid, sidx, contribution);
      }
    }

    void serialize_broadcast(HostId h, graph::VertexId lid, comm::CodecWriter& buf) {
      const HostState& st = r.state_[h];
      const auto& staged = st.to_broadcast[lid];
      buf.meta_u32(static_cast<std::uint32_t>(staged.size()));
      for (const auto& [sidx, is_final] : staged) {
        buf.value_u32(sidx);
        buf.f64(st.slot(lid, sidx).delta);
        buf.u8(is_final ? 1 : 0);
      }
    }

    void apply_broadcast(HostId h, graph::VertexId lid, comm::CodecReader& buf) {
      HostState& st = r.state_[h];
      const auto n = buf.meta_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto sidx = buf.value_u32();
        const auto delta = buf.f64();
        const auto is_final = buf.u8();
        if (!is_final) continue;
        st.slot(lid, sidx).delta = delta;
        r.worklist_[h].push_back({lid, sidx});
      }
    }
  };

  const Partition& part_;
  std::vector<graph::VertexId> batch_;
  MrbcOptions opts_;
  comm::Substrate substrate_;
  std::vector<HostState> state_;
  std::vector<std::vector<graph::VertexId>> masters_;
  std::vector<std::vector<std::pair<graph::VertexId, std::uint32_t>>> worklist_;
  std::vector<std::vector<std::pair<graph::VertexId, std::uint32_t>>> self_sched_;
  std::vector<std::vector<graph::VertexId>> staged_lids_;
  std::vector<std::size_t> anomalies_;
  std::vector<std::vector<std::uint8_t>> flags_;
  std::vector<std::uint8_t> host_active_;  // not vector<bool>: hosts write concurrently
  // Direction-optimization state (all derived / round-local; none of it is
  // checkpointed — see restore_checkpoint):
  std::vector<util::DynamicBitset> avail_;     ///< per host: np x kw plane, bit = not final
  std::vector<util::DynamicBitset> frontier_;  ///< per host: this round's drained slots
  std::vector<std::vector<std::uint32_t>> frontier_ord_;  ///< np x k drain ordinals
  std::vector<std::uint8_t> last_pull_;        ///< kAuto hysteresis, per host
  std::vector<std::uint64_t> local_edges_;     ///< cached |E(local graph)|, per host
  std::vector<std::uint64_t> live_indeg_;      ///< in-degree sum of not-fully-final lids
  std::vector<std::vector<std::uint32_t>> final_count_;  ///< finalized sources per lid
  std::vector<std::size_t> pull_rounds_;       ///< diagnostic counter, per host
  std::vector<DrainScratch> scratch_;          ///< pooled drain buffers, per host
  std::vector<PackedIn> packed_in_;            ///< lazy packed gather CSR, per host
  std::uint32_t forward_rounds_ = 0;
  std::uint32_t current_round_ = 0;
};

// ---- Durable restart-from-disk checkpoints --------------------------------
// Snapshot layout (engine/snapshot.h container): a meta section pinning the
// configuration + progress cursor, an accum section with everything
// harvested from completed batches, and — when a batch is in flight — the
// in-flight phase's stats plus the BSP loop's coordinated checkpoint. The
// fault-schedule cursor and the membership map ride along so resumed runs
// neither refire already-fired events nor forget declared deaths.

constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecAccum = 2;
constexpr std::uint32_t kSecPhase = 3;
constexpr std::uint32_t kSecLoop = 4;
constexpr std::uint32_t kSecFault = 5;
constexpr std::uint32_t kSecMembership = 6;

constexpr std::uint32_t kPhaseForward = 0;
constexpr std::uint32_t kPhaseBackward = 1;
constexpr std::uint32_t kPhaseBatchDone = 2;

/// Thrown by the durable writer to emulate a process killed immediately
/// after persisting a snapshot (MrbcOptions::halt_after_checkpoints).
struct HaltRun {};

std::string durable_path(const MrbcOptions& options) {
  return options.checkpoint_dir + "/mrbc.ckpt";
}

/// Everything that must match between the writing and the resuming run for
/// a snapshot to mean the same computation.
std::uint32_t config_fingerprint(const Partition& part,
                                 const std::vector<graph::VertexId>& sources,
                                 const MrbcOptions& options) {
  util::SendBuffer buf;
  buf.write<std::uint64_t>(part.num_global_vertices());
  buf.write<std::uint32_t>(part.num_hosts());
  buf.write<std::uint32_t>(std::max<std::uint32_t>(options.batch_size, 1));
  buf.write<std::uint8_t>(options.delayed_sync ? 1 : 0);
  buf.write<std::uint8_t>(options.collect_tables ? 1 : 0);
  buf.write<std::uint8_t>(static_cast<std::uint8_t>(options.cluster.codec));
  buf.write<std::uint64_t>(options.cluster.checkpoint_interval);
  buf.write_vector(sources);
  return util::crc32(buf.bytes());
}

template <typename T>
void save_tables(util::SendBuffer& buf, const std::vector<std::vector<T>>& tables) {
  buf.write<std::uint64_t>(tables.size());
  for (const auto& row : tables) buf.write_vector(row);
}

template <typename T>
void load_tables(util::RecvBuffer& buf, std::vector<std::vector<T>>& tables) {
  const auto n = buf.read<std::uint64_t>();
  tables.clear();
  tables.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) tables.push_back(buf.read_vector<T>());
}

void save_accum(util::SendBuffer& buf, const MrbcRun& run) {
  buf.write_vector(run.result.bc);
  buf.write_vector(run.result.sources);
  save_tables(buf, run.result.dist);
  save_tables(buf, run.result.sigma);
  save_tables(buf, run.result.delta);
  sim::save_run_stats(buf, run.forward);
  sim::save_run_stats(buf, run.backward);
  buf.write<std::uint64_t>(run.num_batches);
  buf.write<std::uint64_t>(run.anomalies);
  buf.write<double>(run.replication_factor);
}

void load_accum(util::RecvBuffer& buf, MrbcRun& run) {
  run.result.bc = buf.read_vector<double>();
  run.result.sources = buf.read_vector<graph::VertexId>();
  load_tables(buf, run.result.dist);
  load_tables(buf, run.result.sigma);
  load_tables(buf, run.result.delta);
  run.forward = sim::load_run_stats(buf);
  run.backward = sim::load_run_stats(buf);
  run.num_batches = buf.read<std::uint64_t>();
  run.anomalies = buf.read<std::uint64_t>();
  run.replication_factor = buf.read<double>();
}

/// Serializes the current run state to <checkpoint_dir>/mrbc.ckpt. One
/// writer lives for the whole driver call; the progress-cursor fields are
/// updated as batches and phases advance.
struct DurableWriter {
  std::string path;
  std::uint32_t fingerprint = 0;
  const MrbcOptions* opts = nullptr;
  const MrbcRun* accum = nullptr;  ///< state as of the current batch's start
  std::uint64_t batch_begin = 0;
  std::uint32_t phase = kPhaseForward;
  const sim::RunStats* batch_forward = nullptr;  ///< set during backward
  const sim::RunStats* leg_prefix = nullptr;     ///< stats this leg resumed from
  std::size_t writes = 0;

  /// `loop`/`partial` are null at batch boundaries (nothing in flight).
  void write(const sim::LoopCheckpoint* loop, const sim::RunStats* partial) {
    sim::SnapshotWriter w;
    util::SendBuffer& meta = w.section(kSecMeta);
    meta.write<std::uint32_t>(fingerprint);
    meta.write<std::uint64_t>(batch_begin);
    meta.write<std::uint32_t>(phase);
    save_accum(w.section(kSecAccum), *accum);
    if (phase != kPhaseBatchDone) {
      util::SendBuffer& ph = w.section(kSecPhase);
      if (phase == kPhaseBackward) sim::save_run_stats(ph, *batch_forward);
      if (leg_prefix != nullptr) {
        sim::save_run_stats(ph, sim::merge_resumed(*leg_prefix, *partial));
      } else {
        sim::save_run_stats(ph, *partial);
      }
      util::SendBuffer& lp = w.section(kSecLoop);
      lp.write<std::uint64_t>(loop->round);
      lp.write<std::uint8_t>(loop->any_active ? 1 : 0);
      lp.write_vector(loop->snapshot);
    }
    if (opts->cluster.fault != nullptr) {
      opts->cluster.fault->save_cursor(w.section(kSecFault));
    }
    if (opts->cluster.membership != nullptr) {
      opts->cluster.membership->save(w.section(kSecMembership));
    }
    w.write_file(path);
    ++writes;
    if (opts->halt_after_checkpoints != 0 && writes >= opts->halt_after_checkpoints) {
      throw HaltRun{};
    }
    if (opts->halt_flag != nullptr && opts->halt_flag->load(std::memory_order_acquire)) {
      throw HaltRun{};
    }
  }
};

}  // namespace

MrbcRun mrbc_bc(const Partition& part, const std::vector<graph::VertexId>& sources,
                const MrbcOptions& options) {
  MrbcRun run;
  run.result.bc.assign(part.num_global_vertices(), 0.0);
  run.replication_factor = part.replication_factor();
  const std::uint32_t k = std::max<std::uint32_t>(options.batch_size, 1);
  const bool durable = !options.checkpoint_dir.empty();

  DurableWriter writer;
  std::size_t begin = 0;
  std::uint32_t resume_phase = kPhaseBatchDone;  // "at the start of batch `begin`"
  sim::LoopCheckpoint loop_ck;
  sim::RunStats saved_leg;            // interrupted leg's stats at the snapshot
  sim::RunStats saved_batch_forward;  // completed forward of the interrupted batch

  if (durable) {
    writer.path = durable_path(options);
    writer.fingerprint = config_fingerprint(part, sources, options);
    writer.opts = &options;
    writer.accum = &run;
  }
  if (options.resume) {
    if (!durable) throw sim::SnapshotError("MrbcOptions::resume requires checkpoint_dir");
    sim::SnapshotReader reader = sim::SnapshotReader::from_file(writer.path);
    const std::vector<std::uint8_t>& meta_bytes = reader.section(kSecMeta);
    util::RecvBuffer meta(meta_bytes.data(), meta_bytes.size());
    const auto fp = meta.read<std::uint32_t>();
    if (fp != writer.fingerprint) {
      throw sim::SnapshotError(
          "snapshot was written by a different configuration (fingerprint mismatch)");
    }
    begin = meta.read<std::uint64_t>();
    resume_phase = meta.read<std::uint32_t>();
    {
      const std::vector<std::uint8_t>& accum_bytes = reader.section(kSecAccum);
      util::RecvBuffer accum(accum_bytes.data(), accum_bytes.size());
      load_accum(accum, run);
    }
    if (resume_phase != kPhaseBatchDone) {
      const std::vector<std::uint8_t>& phase_bytes = reader.section(kSecPhase);
      util::RecvBuffer ph(phase_bytes.data(), phase_bytes.size());
      if (resume_phase == kPhaseBackward) saved_batch_forward = sim::load_run_stats(ph);
      saved_leg = sim::load_run_stats(ph);
      const std::vector<std::uint8_t>& loop_bytes = reader.section(kSecLoop);
      util::RecvBuffer lp(loop_bytes.data(), loop_bytes.size());
      loop_ck.round = lp.read<std::uint64_t>();
      loop_ck.any_active = lp.read<std::uint8_t>() != 0;
      loop_ck.snapshot = lp.read_vector<std::uint8_t>();
    }
    if (options.cluster.fault != nullptr && reader.has(kSecFault)) {
      const std::vector<std::uint8_t>& cursor_bytes = reader.section(kSecFault);
      util::RecvBuffer cursor(cursor_bytes.data(), cursor_bytes.size());
      options.cluster.fault->restore_cursor(cursor);
    }
    if (options.cluster.membership != nullptr && reader.has(kSecMembership)) {
      const std::vector<std::uint8_t>& mem_bytes = reader.section(kSecMembership);
      util::RecvBuffer mem(mem_bytes.data(), mem_bytes.size());
      options.cluster.membership->restore(mem);
    }
  }

  try {
    for (; begin < sources.size(); begin += k) {
      const std::size_t end = std::min(sources.size(), begin + k);
      std::vector<graph::VertexId> batch(sources.begin() + begin, sources.begin() + end);
      MrbcOptions opts = options;
      if (durable) {
        writer.batch_begin = begin;
        opts.cluster.on_checkpoint = [&](const sim::LoopCheckpoint& ck,
                                         const sim::RunStats& partial) {
          writer.write(&ck, &partial);
        };
      }
      BatchRunner runner(part, std::move(batch), opts);

      const bool resume_here = resume_phase != kPhaseBatchDone;
      sim::RunStats fwd;
      if (resume_here && resume_phase == kPhaseBackward) {
        // Forward already completed before the snapshot; its stats were
        // saved whole and the runner's state is inside the loop snapshot.
        fwd = saved_batch_forward;
      } else if (resume_here) {
        writer.phase = kPhaseForward;
        writer.leg_prefix = &saved_leg;
        fwd = sim::merge_resumed(saved_leg, runner.run_forward(&loop_ck));
        writer.leg_prefix = nullptr;
      } else {
        writer.phase = kPhaseForward;
        fwd = runner.run_forward();
      }
      // NOT folded into run.forward yet: mid-backward snapshots save accum
      // (which must be the state at the batch's start) plus `fwd` in the
      // phase section — folding early would double-count on resume.

      sim::RunStats bwd;
      writer.phase = kPhaseBackward;
      writer.batch_forward = &fwd;
      if (resume_here && resume_phase == kPhaseBackward) {
        writer.leg_prefix = &saved_leg;
        bwd = sim::merge_resumed(saved_leg, runner.run_backward(&loop_ck));
        writer.leg_prefix = nullptr;
      } else {
        bwd = runner.run_backward();
      }
      run.forward += fwd;
      run.backward += bwd;
      writer.batch_forward = nullptr;
      resume_phase = kPhaseBatchDone;

      runner.harvest(run.result);
      run.anomalies += runner.anomalies();
      run.forward_pull_rounds += runner.pull_rounds();
      ++run.num_batches;
      if (durable) {
        // Batch-boundary snapshot: nothing in flight, accum carries it all.
        writer.batch_begin = begin + k;
        writer.phase = kPhaseBatchDone;
        writer.write(nullptr, nullptr);
      }
    }
  } catch (const HaltRun&) {
    run.halted = true;
  }
  return run;
}

MrbcRun mrbc_bc(const Graph& g, const std::vector<graph::VertexId>& sources,
                const MrbcOptions& options) {
  Partition part(g, options.num_hosts, options.policy);
  return mrbc_bc(part, sources, options);
}

}  // namespace mrbc::core
