#pragma once
// Per-host MRBC labels using the data-structure layout of Section 4.3:
//   A_v — a dense array of per-source structs {dist, sigma, delta} giving
//         O(1) access by (vertex, source); the three fields share one
//         struct for spatial locality, exactly as the paper describes.
//   M_v — a flat map from current distance to a dense bitvector over the
//         batch's sources, allowing iteration of the (dist, source) pairs
//         in lexicographic order (the list L_v of Algorithm 3) and rank
//         queries for the pipelined send rounds.
//
// Everything the per-round drains touch per vertex — the slot row, the
// pipelining cursors, the entry count, and the dirty-flag words — lives in
// ONE flat arena allocation (util/arena.h), lid-major, instead of a
// per-vertex constellation of heap vectors/bitsets. The staged replay
// walks target lids in ascending order within 64-lid ranges, so the
// physical memory order now matches the access order, and the arena pages
// are first-touched through the thread pool with the same chunk deal the
// replay uses (see the locality contract in util/thread_pool.h).

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/flat_map.h"
#include "util/serialize.h"

namespace mrbc::core {

using graph::VertexId;

/// One (vertex, source) label cell of the dense array A_v.
struct SourceSlot {
  std::uint32_t dist = graph::kInfDist;
  double sigma = 0.0;
  double delta = 0.0;
};

/// All MRBC labels of one simulated host for a batch of k sources.
/// Move-only: the arena owns the backing block, the spans point into it.
class HostState {
 public:
  using Word = util::bitwords::Word;

  HostState(VertexId num_proxies, std::uint32_t num_sources);
  HostState(HostState&&) noexcept = default;
  HostState& operator=(HostState&&) noexcept = default;

  std::uint32_t num_sources() const { return k_; }
  VertexId num_proxies() const { return num_proxies_; }
  /// 64-bit words per lid in the per-source flag planes (ceil(k / 64)) —
  /// the row stride shared with the runner's frontier/availability planes.
  std::uint32_t source_words() const { return kw_; }

  SourceSlot& slot(VertexId lid, std::uint32_t sidx) {
    return slots_[static_cast<std::size_t>(lid) * k_ + sidx];
  }
  const SourceSlot& slot(VertexId lid, std::uint32_t sidx) const {
    return slots_[static_cast<std::size_t>(lid) * k_ + sidx];
  }

  // --- M_v maintenance --------------------------------------------------
  // update_distance keeps slot.dist and the map consistent: pass the new
  // distance; the old one is read from the slot.
  void update_distance(VertexId lid, std::uint32_t sidx, std::uint32_t new_dist);

  /// Removes (slot.dist, sidx) from the map and resets the slot's dist to
  /// infinity (mirror reduce-reset).
  void clear_distance(VertexId lid, std::uint32_t sidx);

  /// Number of (dist, source) entries of vertex `lid` (|L_v|).
  std::size_t entry_count(VertexId lid) const { return entry_counts_[lid]; }

  /// idx-th (0-based) entry of L_v in lexicographic (dist, source) order.
  std::pair<std::uint32_t, std::uint32_t> nth_entry(VertexId lid, std::size_t idx) const;

  /// 1-based lexicographic position of (dist, sidx) in L_v — the paper's
  /// l_v(d, s). The entry must exist.
  std::size_t position(VertexId lid, std::uint32_t dist, std::uint32_t sidx) const;

  // --- Update tracking for reduce ---------------------------------------
  /// Marks (lid, sidx) as having a pending contribution for the master;
  /// idempotent. Returns true if newly marked.
  bool mark_dirty(VertexId lid, std::uint32_t sidx);
  std::vector<std::uint32_t>& dirty_sources(VertexId lid) { return dirty_[lid]; }
  void clear_dirty(VertexId lid);

  // --- Per-vertex pipelining cursors -------------------------------------
  // Forward phase: number of leading L_v entries already broadcast.
  std::span<std::uint32_t> fwd_sent;
  // Accumulation phase: number of trailing entries already fired.
  std::span<std::uint32_t> acc_sent;
  // Broadcast staging: (sidx, is_final) pairs serialized at the next
  // broadcast; non-final entries model eager synchronization traffic for
  // the delayed-sync ablation.
  std::vector<std::vector<std::pair<std::uint32_t, bool>>> to_broadcast;

  // --- Checkpointing ------------------------------------------------------
  // Serializes / restores the complete label state for crash recovery.
  // M_v and the entry counts are derivable from A_v, so only the slots and
  // round-local cursors/queues go on the wire; restore() rebuilds the index.
  // The wire layout is byte-identical to the historical per-vector format
  // (u64 count + packed elements), so checkpoint sizes are unchanged by the
  // arena refactor.
  void save(util::SendBuffer& buf) const;
  void restore(util::RecvBuffer& buf);

 private:
  /// Carves the arena into the lid-major spans for the current (np, k).
  void layout();
  /// Zero/identity-fills the arena through the pool's 64-lid chunk deal —
  /// the same decomposition the staged replay ranges use, so pages are
  /// first-touched by the worker whose ranges live in them.
  void first_touch_init();

  VertexId num_proxies_ = 0;
  std::uint32_t k_ = 0;
  std::uint32_t kw_ = 0;  ///< ceil(k / 64): words per lid in dirty_words_
  util::Arena arena_;
  std::span<SourceSlot> slots_;
  std::span<std::size_t> entry_counts_;
  std::span<Word> dirty_words_;  ///< np x kw_ idempotency bits for mark_dirty
  std::vector<util::FlatMap<std::uint32_t, util::DynamicBitset>> dist_map_;
  std::vector<std::vector<std::uint32_t>> dirty_;
};

}  // namespace mrbc::core
