#include "core/mrbc_state.h"

#include <cassert>

namespace mrbc::core {

HostState::HostState(VertexId num_proxies, std::uint32_t num_sources)
    : num_proxies_(num_proxies), k_(num_sources) {
  slots_.resize(static_cast<std::size_t>(num_proxies) * k_);
  dist_map_.resize(num_proxies);
  entry_counts_.assign(num_proxies, 0);
  dirty_flags_.resize(num_proxies);
  for (auto& flags : dirty_flags_) flags.resize(k_);
  dirty_.resize(num_proxies);
  fwd_sent.assign(num_proxies, 0);
  acc_sent.assign(num_proxies, 0);
  to_broadcast.resize(num_proxies);
}

void HostState::update_distance(VertexId lid, std::uint32_t sidx, std::uint32_t new_dist) {
  SourceSlot& s = slot(lid, sidx);
  auto& map = dist_map_[lid];
  if (s.dist != graph::kInfDist) {
    if (s.dist == new_dist) return;
    auto it = map.find(s.dist);
    assert(it != map.end());
    it->second.reset(sidx);
    if (it->second.none()) map.erase(it);
    --entry_counts_[lid];
  }
  s.dist = new_dist;
  auto [it, inserted] = map.try_emplace(new_dist);
  if (inserted) it->second.resize(k_);
  it->second.set(sidx);
  ++entry_counts_[lid];
}

void HostState::clear_distance(VertexId lid, std::uint32_t sidx) {
  SourceSlot& s = slot(lid, sidx);
  if (s.dist == graph::kInfDist) return;
  auto& map = dist_map_[lid];
  auto it = map.find(s.dist);
  assert(it != map.end());
  it->second.reset(sidx);
  if (it->second.none()) map.erase(it);
  --entry_counts_[lid];
  s.dist = graph::kInfDist;
}

std::pair<std::uint32_t, std::uint32_t> HostState::nth_entry(VertexId lid,
                                                             std::size_t idx) const {
  assert(idx < entry_counts_[lid]);
  for (const auto& [dist, sources] : dist_map_[lid]) {
    const std::size_t bucket = sources.count();
    if (idx < bucket) {
      // Select the idx-th set bit within this distance bucket.
      std::size_t bit = sources.find_first();
      while (idx-- > 0) bit = sources.find_first_from(bit + 1);
      return {dist, static_cast<std::uint32_t>(bit)};
    }
    idx -= bucket;
  }
  assert(false && "nth_entry out of range");
  return {graph::kInfDist, 0};
}

std::size_t HostState::position(VertexId lid, std::uint32_t dist, std::uint32_t sidx) const {
  std::size_t pos = 0;
  for (const auto& [d, sources] : dist_map_[lid]) {
    if (d < dist) {
      pos += sources.count();
      continue;
    }
    assert(d == dist && sources.test(sidx));
    for (std::size_t bit = sources.find_first(); bit < sidx;
         bit = sources.find_first_from(bit + 1)) {
      ++pos;
    }
    return pos + 1;  // 1-based
  }
  assert(false && "position: entry not present");
  return 0;
}

bool HostState::mark_dirty(VertexId lid, std::uint32_t sidx) {
  if (dirty_flags_[lid].test(sidx)) return false;
  dirty_flags_[lid].set(sidx);
  dirty_[lid].push_back(sidx);
  return true;
}

void HostState::clear_dirty(VertexId lid) {
  for (std::uint32_t sidx : dirty_[lid]) dirty_flags_[lid].reset(sidx);
  dirty_[lid].clear();
}

void HostState::save(util::SendBuffer& buf) const {
  buf.write<std::uint32_t>(k_);
  buf.write<VertexId>(num_proxies_);
  buf.write_vector(slots_);
  for (VertexId lid = 0; lid < num_proxies_; ++lid) buf.write_vector(dirty_[lid]);
  buf.write_vector(fwd_sent);
  buf.write_vector(acc_sent);
  // std::pair is not guaranteed trivially copyable; serialize elementwise.
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    buf.write<std::uint64_t>(to_broadcast[lid].size());
    for (const auto& [sidx, is_final] : to_broadcast[lid]) {
      buf.write<std::uint32_t>(sidx);
      buf.write<std::uint8_t>(is_final ? 1 : 0);
    }
  }
}

void HostState::restore(util::RecvBuffer& buf) {
  k_ = buf.read<std::uint32_t>();
  num_proxies_ = buf.read<VertexId>();
  slots_ = buf.read_vector<SourceSlot>();
  dirty_.assign(num_proxies_, {});
  for (VertexId lid = 0; lid < num_proxies_; ++lid) dirty_[lid] = buf.read_vector<std::uint32_t>();
  fwd_sent = buf.read_vector<std::uint32_t>();
  acc_sent = buf.read_vector<std::uint32_t>();
  to_broadcast.assign(num_proxies_, {});
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    const auto n = buf.read<std::uint64_t>();
    to_broadcast[lid].reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto sidx = buf.read<std::uint32_t>();
      const bool is_final = buf.read<std::uint8_t>() != 0;
      to_broadcast[lid].emplace_back(sidx, is_final);
    }
  }
  // Rebuild the derived structures: M_v / entry counts from A_v, dirty
  // bitsets from the dirty lists.
  dist_map_.assign(num_proxies_, {});
  entry_counts_.assign(num_proxies_, 0);
  dirty_flags_.assign(num_proxies_, util::DynamicBitset(k_));
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    auto& map = dist_map_[lid];
    for (std::uint32_t sidx = 0; sidx < k_; ++sidx) {
      const std::uint32_t d = slot(lid, sidx).dist;
      if (d == graph::kInfDist) continue;
      auto [it, inserted] = map.try_emplace(d);
      if (inserted) it->second.resize(k_);
      it->second.set(sidx);
      ++entry_counts_[lid];
    }
    for (std::uint32_t sidx : dirty_[lid]) dirty_flags_[lid].set(sidx);
  }
}

}  // namespace mrbc::core
