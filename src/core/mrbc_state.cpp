#include "core/mrbc_state.h"

#include <algorithm>
#include <cassert>

#include "core/staged_drain.h"
#include "util/thread_pool.h"

namespace mrbc::core {

HostState::HostState(VertexId num_proxies, std::uint32_t num_sources)
    : num_proxies_(num_proxies), k_(num_sources) {
  layout();
  first_touch_init();
  dist_map_.resize(num_proxies);
  dirty_.resize(num_proxies);
  to_broadcast.resize(num_proxies);
}

void HostState::layout() {
  const std::size_t np = num_proxies_;
  kw_ = (k_ + 63) / 64;
  using util::Arena;
  arena_.reserve(Arena::bytes_for<SourceSlot>(np * k_) + Arena::bytes_for<std::size_t>(np) +
                 2 * Arena::bytes_for<std::uint32_t>(np) + Arena::bytes_for<Word>(np * kw_));
  slots_ = arena_.alloc<SourceSlot>(np * k_);
  entry_counts_ = arena_.alloc<std::size_t>(np);
  fwd_sent = arena_.alloc<std::uint32_t>(np);
  acc_sent = arena_.alloc<std::uint32_t>(np);
  dirty_words_ = arena_.alloc<Word>(np * kw_);
}

void HostState::first_touch_init() {
  // 64-lid chunks: the exact decomposition the staged replay buckets by
  // (kRangeShift), so under the pool's stable deal each worker faults in
  // the arena pages its replay ranges will re-touch every round.
  const std::size_t grain = std::size_t{1} << kRangeShift;
  util::ThreadPool::global().parallel_for_chunks(
      0, static_cast<std::size_t>(num_proxies_), grain,
      [&](std::size_t, std::size_t b, std::size_t e) {
        std::fill(slots_.begin() + b * k_, slots_.begin() + e * k_, SourceSlot{});
        std::fill(entry_counts_.begin() + b, entry_counts_.begin() + e, std::size_t{0});
        std::fill(fwd_sent.begin() + b, fwd_sent.begin() + e, 0u);
        std::fill(acc_sent.begin() + b, acc_sent.begin() + e, 0u);
        std::fill(dirty_words_.begin() + b * kw_, dirty_words_.begin() + e * kw_, Word{0});
      });
}

void HostState::update_distance(VertexId lid, std::uint32_t sidx, std::uint32_t new_dist) {
  SourceSlot& s = slot(lid, sidx);
  auto& map = dist_map_[lid];
  if (s.dist != graph::kInfDist) {
    if (s.dist == new_dist) return;
    auto it = map.find(s.dist);
    assert(it != map.end());
    it->second.reset(sidx);
    if (it->second.none()) map.erase(it);
    --entry_counts_[lid];
  }
  s.dist = new_dist;
  auto [it, inserted] = map.try_emplace(new_dist);
  if (inserted) it->second.resize(k_);
  it->second.set(sidx);
  ++entry_counts_[lid];
}

void HostState::clear_distance(VertexId lid, std::uint32_t sidx) {
  SourceSlot& s = slot(lid, sidx);
  if (s.dist == graph::kInfDist) return;
  auto& map = dist_map_[lid];
  auto it = map.find(s.dist);
  assert(it != map.end());
  it->second.reset(sidx);
  if (it->second.none()) map.erase(it);
  --entry_counts_[lid];
  s.dist = graph::kInfDist;
}

std::pair<std::uint32_t, std::uint32_t> HostState::nth_entry(VertexId lid,
                                                             std::size_t idx) const {
  assert(idx < entry_counts_[lid]);
  for (const auto& [dist, sources] : dist_map_[lid]) {
    const std::size_t bucket = sources.count();
    if (idx < bucket) {
      // Select the idx-th set bit within this distance bucket.
      std::size_t bit = sources.find_first();
      while (idx-- > 0) bit = sources.find_first_from(bit + 1);
      return {dist, static_cast<std::uint32_t>(bit)};
    }
    idx -= bucket;
  }
  assert(false && "nth_entry out of range");
  return {graph::kInfDist, 0};
}

std::size_t HostState::position(VertexId lid, std::uint32_t dist, std::uint32_t sidx) const {
  std::size_t pos = 0;
  for (const auto& [d, sources] : dist_map_[lid]) {
    if (d < dist) {
      pos += sources.count();
      continue;
    }
    assert(d == dist && sources.test(sidx));
    for (std::size_t bit = sources.find_first(); bit < sidx;
         bit = sources.find_first_from(bit + 1)) {
      ++pos;
    }
    return pos + 1;  // 1-based
  }
  assert(false && "position: entry not present");
  return 0;
}

bool HostState::mark_dirty(VertexId lid, std::uint32_t sidx) {
  Word& w = dirty_words_[static_cast<std::size_t>(lid) * kw_ + sidx / 64];
  const Word bit = Word{1} << (sidx % 64);
  if (w & bit) return false;
  w |= bit;
  dirty_[lid].push_back(sidx);
  return true;
}

void HostState::clear_dirty(VertexId lid) {
  for (std::uint32_t sidx : dirty_[lid]) {
    dirty_words_[static_cast<std::size_t>(lid) * kw_ + sidx / 64] &= ~(Word{1} << (sidx % 64));
  }
  dirty_[lid].clear();
}

void HostState::save(util::SendBuffer& buf) const {
  buf.write<std::uint32_t>(k_);
  buf.write<VertexId>(num_proxies_);
  buf.write_array(slots_.data(), slots_.size());
  for (VertexId lid = 0; lid < num_proxies_; ++lid) buf.write_vector(dirty_[lid]);
  buf.write_array(fwd_sent.data(), fwd_sent.size());
  buf.write_array(acc_sent.data(), acc_sent.size());
  // std::pair is not guaranteed trivially copyable; serialize elementwise.
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    buf.write<std::uint64_t>(to_broadcast[lid].size());
    for (const auto& [sidx, is_final] : to_broadcast[lid]) {
      buf.write<std::uint32_t>(sidx);
      buf.write<std::uint8_t>(is_final ? 1 : 0);
    }
  }
}

void HostState::restore(util::RecvBuffer& buf) {
  const auto k = buf.read<std::uint32_t>();
  const auto np = buf.read<VertexId>();
  if (k != k_ || np != num_proxies_ || arena_.capacity() == 0) {
    // Foreign dimensions (or a moved-from shell): re-carve the arena. The
    // common in-place restore keeps the existing block and its page homes.
    k_ = k;
    num_proxies_ = np;
    layout();
    first_touch_init();
  }
  buf.read_array(slots_.data(), slots_.size());
  dirty_.assign(num_proxies_, {});
  for (VertexId lid = 0; lid < num_proxies_; ++lid) dirty_[lid] = buf.read_vector<std::uint32_t>();
  buf.read_array(fwd_sent.data(), fwd_sent.size());
  buf.read_array(acc_sent.data(), acc_sent.size());
  to_broadcast.assign(num_proxies_, {});
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    const auto n = buf.read<std::uint64_t>();
    to_broadcast[lid].reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto sidx = buf.read<std::uint32_t>();
      const bool is_final = buf.read<std::uint8_t>() != 0;
      to_broadcast[lid].emplace_back(sidx, is_final);
    }
  }
  // Rebuild the derived structures: M_v / entry counts from A_v, the dirty
  // word plane from the dirty lists.
  dist_map_.assign(num_proxies_, {});
  std::fill(entry_counts_.begin(), entry_counts_.end(), std::size_t{0});
  std::fill(dirty_words_.begin(), dirty_words_.end(), Word{0});
  for (VertexId lid = 0; lid < num_proxies_; ++lid) {
    auto& map = dist_map_[lid];
    for (std::uint32_t sidx = 0; sidx < k_; ++sidx) {
      const std::uint32_t d = slot(lid, sidx).dist;
      if (d == graph::kInfDist) continue;
      auto [it, inserted] = map.try_emplace(d);
      if (inserted) it->second.resize(k_);
      it->second.set(sidx);
      ++entry_counts_[lid];
    }
    for (std::uint32_t sidx : dirty_[lid]) {
      dirty_words_[static_cast<std::size_t>(lid) * kw_ + sidx / 64] |= Word{1} << (sidx % 64);
    }
  }
}

}  // namespace mrbc::core
