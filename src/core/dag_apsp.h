#pragma once
// Extension: pipelined APSP for *weighted* directed acyclic graphs in the
// CONGEST model, in O(n + L) rounds (L = longest path length in edges) and
// exactly m*n messages. Section 3.1 of the paper points to a novel
// O(n)-round weighted-DAG APSP in the companion report [50]; this module
// implements a pipelined algorithm in that spirit:
//
//   Every vertex emits the distances of sources 0, 1, ..., n-1 in index
//   order, one per round per out-edge (unreachable = infinity marker).
//   Vertex v can finalize source s once every in-neighbor has emitted s —
//   and because emissions are in source order, that holds as soon as all
//   in-neighbors have advanced past s. Induction gives: v emits s no later
//   than round s + level(v) + 1, so the whole computation completes in
//   n + L + O(1) rounds.

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mrbc::core {

/// A directed acyclic graph with positive integer edge weights, aligned
/// with the CSR out-edge order of `graph`.
struct WeightedDag {
  graph::Graph graph;
  std::vector<std::uint32_t> weights;  ///< weights[i] belongs to out_targets()[i]

  std::uint32_t weight_of(graph::VertexId u, std::size_t out_index) const {
    return weights[graph.out_offsets()[u] + out_index];
  }
};

/// Uniformly random DAG (edges u -> v only for u < v, density p) with
/// weights in [1, max_weight].
WeightedDag random_weighted_dag(graph::VertexId n, double p, std::uint32_t max_weight,
                                std::uint64_t seed);

struct DagApspMetrics {
  std::size_t rounds = 0;
  std::size_t messages = 0;
  std::size_t max_channel_congestion = 0;
};

struct DagApspRun {
  /// dist[s][v] = weighted shortest distance, kInfDist if unreachable.
  std::vector<std::vector<std::uint32_t>> dist;
  DagApspMetrics metrics;
};

/// Runs the pipelined CONGEST algorithm. The input must be acyclic
/// (asserted in debug builds via the emission schedule; cycles deadlock the
/// pipeline and are reported by a safety cap).
DagApspRun dag_apsp(const WeightedDag& dag);

/// Sequential golden reference: per-source relaxation in topological order.
std::vector<std::vector<std::uint32_t>> dag_apsp_reference(const WeightedDag& dag);

}  // namespace mrbc::core
