#include "core/approx_bc.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "util/rng.h"

namespace mrbc::core {

BcScores sampled_bc(const Graph& g, const SampledBcOptions& options) {
  const graph::VertexId n = g.num_vertices();
  if (n == 0) return {};
  const auto k = std::min<std::uint32_t>(options.num_samples, n);
  const auto sources =
      graph::sample_sources(g, k, options.seed, /*contiguous=*/false);
  MrbcRun run = mrbc_bc(g, sources, options.mrbc);
  const double scale = static_cast<double>(n) / static_cast<double>(k);
  for (double& b : run.result.bc) b *= scale;
  return std::move(run.result.bc);
}

AdaptiveBcResult adaptive_bc_vertex(const Graph& g, graph::VertexId v,
                                    const AdaptiveBcOptions& options) {
  const graph::VertexId n = g.num_vertices();
  AdaptiveBcResult result;
  if (n == 0) return result;
  const std::uint32_t max_samples =
      options.max_samples == 0 ? n : std::min<std::uint32_t>(options.max_samples, n);
  const double threshold = options.c * static_cast<double>(n);
  const auto order = graph::sample_sources(g, n, options.seed, /*contiguous=*/false);

  double accumulated = 0.0;
  for (std::uint32_t i = 0; i < max_samples; ++i) {
    const graph::VertexId s = order[i];
    ++result.samples;
    if (s == v) continue;
    // One Brandes dependency pass from s; only delta_s(v) is consumed.
    const auto bfs = graph::bfs(g, s);
    if (bfs.dist[v] == graph::kInfDist) continue;
    // Reverse sweep in non-increasing distance.
    std::vector<graph::VertexId> by_dist;
    by_dist.reserve(n);
    for (graph::VertexId u = 0; u < n; ++u) {
      if (bfs.dist[u] != graph::kInfDist) by_dist.push_back(u);
    }
    std::sort(by_dist.begin(), by_dist.end(), [&bfs](graph::VertexId a, graph::VertexId b) {
      return bfs.dist[a] > bfs.dist[b];
    });
    std::vector<double> delta(n, 0.0);
    for (graph::VertexId w : by_dist) {
      for (graph::VertexId p : bfs.preds[w]) {
        delta[p] += bfs.sigma[p] / bfs.sigma[w] * (1.0 + delta[w]);
      }
    }
    accumulated += delta[v];
    if (accumulated >= threshold) {
      result.converged = true;
      break;
    }
  }
  // Estimator: n * (mean dependency per sampled source).
  result.estimate = result.samples > 0
                        ? static_cast<double>(n) * accumulated / static_cast<double>(result.samples)
                        : 0.0;
  return result;
}

}  // namespace mrbc::core
