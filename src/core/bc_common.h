#pragma once
// Shared result types for all betweenness-centrality implementations
// (MRBC core and the baselines), so tests and benchmarks can compare them
// uniformly.

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mrbc::core {

using graph::Graph;
using graph::VertexId;

/// Per-vertex betweenness scores, summed over the processed sources.
/// With all n vertices as sources this is exact BC; with a sampled source
/// set it is the standard approximation (Bader et al. [6] in the paper).
using BcScores = std::vector<double>;

/// Full per-source data from a forward+backward execution. Indexed
/// [source_index][vertex]; source_index follows the `sources` vector.
struct BcResult {
  BcScores bc;
  std::vector<VertexId> sources;
  std::vector<std::vector<std::uint32_t>> dist;  ///< kInfDist when unreachable
  std::vector<std::vector<double>> sigma;
  std::vector<std::vector<double>> delta;
};

/// Maximum finite distance in a distance table ("H" in Lemma 8).
std::uint32_t max_finite_distance(const std::vector<std::vector<std::uint32_t>>& dist);

}  // namespace mrbc::core
