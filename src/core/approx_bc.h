#pragma once
// Approximate betweenness centrality by source sampling — the estimator the
// paper's evaluation relies on ("The BC of a vertex can be approximated by
// summing the betweenness scores of that vertex for randomly sampled
// sources", citing Bader, Kintali, Madduri & Mihail, WAW'07).
//
// Two estimators:
//   * sampled_bc — unbiased n/k-scaled estimate of every vertex's BC from
//     k uniformly sampled sources, computed with the distributed MRBC path.
//   * adaptive_bc_vertex — Bader et al.'s adaptive scheme for a single
//     vertex: sample sources one at a time and stop once the accumulated
//     dependency exceeds c*n, giving a (1/c)-relative-error style estimate
//     for high-centrality vertices with far fewer samples.

#include <cstdint>

#include "core/mrbc.h"
#include "graph/graph.h"

namespace mrbc::core {

struct SampledBcOptions {
  std::uint32_t num_samples = 64;
  std::uint64_t seed = 1;
  MrbcOptions mrbc;  ///< distributed execution configuration
};

/// n/k-scaled BC estimate for every vertex from uniformly sampled sources
/// (without replacement). With num_samples >= n this is exact BC.
BcScores sampled_bc(const Graph& g, const SampledBcOptions& options = {});

struct AdaptiveBcResult {
  double estimate = 0.0;       ///< estimated BC(v)
  std::uint32_t samples = 0;   ///< sources consumed before the stop rule
  bool converged = false;      ///< accumulated dependency reached c*n
};

struct AdaptiveBcOptions {
  double c = 5.0;              ///< stop once sum of delta_s(v) >= c * n
  std::uint32_t max_samples = 0;  ///< 0 => n samples (exact fallback)
  std::uint64_t seed = 1;
};

/// Bader et al. adaptive estimator for one vertex. Runs single-source
/// dependency computations (shared-memory) until the stopping rule fires.
AdaptiveBcResult adaptive_bc_vertex(const Graph& g, graph::VertexId v,
                                    const AdaptiveBcOptions& options = {});

}  // namespace mrbc::core
