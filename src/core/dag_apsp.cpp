#include "core/dag_apsp.h"

#include <algorithm>
#include <numeric>

#include "engine/congest.h"
#include "graph/builder.h"
#include "util/rng.h"

namespace mrbc::core {

using graph::kInfDist;
using graph::VertexId;

WeightedDag random_weighted_dag(VertexId n, double p, std::uint32_t max_weight,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) edges.push_back({u, v});
    }
  }
  // build_graph sorts/dedups, but this list is already sorted and unique,
  // so weight alignment with the CSR edge order is direct.
  WeightedDag dag;
  dag.graph = graph::build_graph(n, edges);
  dag.weights.resize(dag.graph.num_edges());
  for (auto& w : dag.weights) {
    w = 1 + static_cast<std::uint32_t>(rng.next_bounded(std::max<std::uint32_t>(max_weight, 1)));
  }
  return dag;
}

namespace {

struct Msg {
  std::uint32_t source;
  std::uint32_t dist;  // already includes the edge weight; kInfDist = unreachable
};

}  // namespace

DagApspRun dag_apsp(const WeightedDag& dag) {
  const graph::Graph& g = dag.graph;
  const VertexId n = g.num_vertices();
  DagApspRun run;
  run.dist.assign(n, std::vector<std::uint32_t>(n, kInfDist));
  if (n == 0) return run;

  congest::Network<Msg> net(g);
  // Per vertex: best incoming value per source, how many in-neighbors have
  // delivered each source, and the emission cursor.
  std::vector<std::vector<std::uint32_t>> best(n, std::vector<std::uint32_t>(n, kInfDist));
  std::vector<std::vector<std::uint32_t>> arrived(n, std::vector<std::uint32_t>(n, 0));
  std::vector<std::uint32_t> next_source(n, 0);

  for (VertexId v = 0; v < n; ++v) best[v][v] = 0;

  const std::size_t cap = 4 * static_cast<std::size_t>(n) + 16;
  std::size_t r = 0;
  while (true) {
    ++r;
    net.advance_round();
    for (VertexId v = 0; v < n; ++v) {
      for (const auto& [from, m] : net.inbox(v)) {
        (void)from;
        best[v][m.source] = std::min(best[v][m.source], m.dist);
        ++arrived[v][m.source];
      }
    }
    bool all_done = true;
    bool sent_any = false;
    for (VertexId v = 0; v < n; ++v) {
      // Emit the next source if finalized: all in-neighbors delivered it.
      if (next_source[v] < n) {
        const std::uint32_t s = next_source[v];
        if (arrived[v][s] == g.in_degree(v)) {
          const std::uint32_t d = best[v][s];
          run.dist[s][v] = d;
          auto nbrs = g.out_neighbors(v);
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const std::uint32_t w = dag.weight_of(v, i);
            net.send(v, nbrs[i],
                     Msg{s, d == kInfDist ? kInfDist
                                          : d + w});
            ++run.metrics.messages;
          }
          ++next_source[v];
          sent_any = true;
        }
      }
      all_done = all_done && next_source[v] == n;
    }
    if (all_done && !net.messages_in_flight()) break;
    if (!sent_any && !net.messages_in_flight()) break;  // deadlock (cyclic input)
    if (r >= cap) break;
  }
  run.metrics.rounds = r;
  run.metrics.max_channel_congestion = net.max_channel_congestion();
  return run;
}

std::vector<std::vector<std::uint32_t>> dag_apsp_reference(const WeightedDag& dag) {
  const graph::Graph& g = dag.graph;
  const VertexId n = g.num_vertices();
  std::vector<std::vector<std::uint32_t>> dist(n, std::vector<std::uint32_t>(n, kInfDist));
  // Vertex ids are already topologically ordered for random_weighted_dag
  // inputs (edges go low -> high); for generality, compute a topological
  // order by repeated in-degree removal.
  std::vector<std::uint32_t> indeg(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) indeg[v] = static_cast<std::uint32_t>(g.in_degree(v));
  for (VertexId v = 0; v < n; ++v) {
    if (indeg[v] == 0) order.push_back(v);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (VertexId w : g.out_neighbors(order[i])) {
      if (--indeg[w] == 0) order.push_back(w);
    }
  }
  for (VertexId s = 0; s < n; ++s) {
    dist[s][s] = 0;
    for (VertexId u : order) {
      if (dist[s][u] == kInfDist) continue;
      auto nbrs = g.out_neighbors(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        dist[s][nbrs[i]] = std::min(dist[s][nbrs[i]], dist[s][u] + dag.weight_of(u, i));
      }
    }
  }
  return dist;
}

}  // namespace mrbc::core
