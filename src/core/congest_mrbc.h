#pragma once
// Reference implementation of Min-Rounds BC in the CONGEST model:
// Algorithm 3 (Directed-APSP with pipelined source detection),
// Algorithm 4 (APSP-Finalizer: BFS-tree convergecast of the directed
// diameter, cutting termination from 2n to n + O(D) rounds), and
// Algorithm 5 (timestamp-reversal accumulation phase).
//
// This implementation runs one processor per vertex on congest::Network and
// is deliberately literal — it exists to validate Theorem 1's round and
// message bounds and to serve as the golden model for the production
// D-Galois-style implementation in mrbc.h.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bc_common.h"
#include "graph/graph.h"

namespace mrbc::core {

/// How the forward (APSP) phase decides to stop.
enum class Termination {
  kFixed2n,          ///< Theorem 1, part I.2: exactly 2n rounds, <= mn messages
  kFinalizer,        ///< Theorem 1, part I.1: Alg. 4, min{2n, n+O(D)} rounds
  kGlobalDetection,  ///< Lemma 8: system-level quiescence detection (D-Galois)
};

struct CongestOptions {
  Termination termination = Termination::kGlobalDetection;
  /// Theorem 1, part I.3: when false, the vertices first compute n with a
  /// BFS-tree convergecast over the undirected closure UG (Alg. 3 steps
  /// 5-6, O(Du) rounds) before the 2n-round cap can be applied. Requires a
  /// weakly connected graph; applies to the all-sources mode only.
  bool n_known = true;
};

/// Execution record of one CONGEST run, including the accounting needed to
/// check Theorem 1 and Lemma 8.
struct CongestMetrics {
  std::size_t forward_rounds = 0;
  std::size_t accumulation_rounds = 0;
  std::size_t apsp_messages = 0;      ///< Alg. 3 step 9 payloads (bound: mn, or mk for k-SSP)
  std::size_t aux_messages = 0;       ///< Alg. 4 BFS/convergecast/broadcast (bound: O(m))
  std::size_t accumulation_messages = 0;  ///< Alg. 5 payloads
  std::uint32_t diameter = 0;         ///< D broadcast by Alg. 4 (0 if unused)
  bool finalizer_triggered = false;   ///< Alg. 4 actually cut the execution
  std::size_t anomalies = 0;          ///< invariant violations (must be 0):
                                      ///< skipped sends, post-send updates
  std::size_t count_rounds = 0;       ///< rounds spent computing n (part I.3)
  std::size_t count_messages = 0;     ///< messages of the n-computation
  std::size_t max_channel_congestion = 0;  ///< per-edge-per-round max (O(1) required)
};

struct CongestRun {
  BcResult result;
  CongestMetrics metrics;
};

/// Full MRBC: APSP from every vertex + BC of every vertex (Alg. 5).
/// For Termination::kFinalizer the graph should be strongly connected for
/// the n+O(D) bound to apply; otherwise execution falls back to 2n rounds.
CongestRun congest_mrbc_all_sources(const Graph& g, const CongestOptions& options = {});

/// k-SSP variant (Lemma 8): shortest paths / BC contributions from the
/// given sources only. Always uses global termination detection.
CongestRun congest_mrbc(const Graph& g, const std::vector<VertexId>& sources,
                        const CongestOptions& options = {});

}  // namespace mrbc::core
