#pragma once
// Shared machinery for the deterministic two-phase parallel worklist drain
// used by the MRBC and SBBC compute kernels (see the design comment in
// core/mrbc.cpp). Phase A records each drained entry's neighbor pushes into
// per-chunk buffers bucketed by the target lid's 64-aligned range; Phase B
// replays every range's pushes in (chunk index, in-chunk order) — the exact
// sequential push order — with ranges running concurrently because they are
// disjoint in everything a push mutates.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mrbc::core {

/// 64 lids per replay range: one DynamicBitset word, so concurrent ranges
/// never share a substrate flag word.
constexpr std::uint32_t kRangeShift = 6;

inline std::size_t num_drain_ranges(std::size_t num_proxies) {
  return (num_proxies + (std::size_t{1} << kRangeShift) - 1) >> kRangeShift;
}

/// One recorded neighbor push awaiting ordered replay.
struct PushRec {
  graph::VertexId target = 0;
  std::uint32_t sidx = 0;   ///< source index (MRBC); unused by SBBC
  std::uint32_t dist = 0;   ///< forward phase only
  double value = 0;         ///< sigma (forward) / contribution (backward)
  std::uint32_t ord = 0;    ///< in-chunk sequential push index
};

/// Phase-A output of one entry chunk: pushes counting-sorted (stably) into
/// contiguous per-range segments. Instances are pooled in a DrainScratch and
/// reused round after round — bucket_by_range recycles every internal buffer.
struct ChunkRecs {
  std::vector<PushRec> sorted;
  std::vector<std::uint32_t> starts;  ///< num_ranges + 1 offsets into sorted
  std::uint64_t work_items = 0;

  void bucket_by_range(const std::vector<PushRec>& recs, std::size_t num_ranges) {
    starts.assign(num_ranges + 1, 0);
    for (const PushRec& r : recs) ++starts[(r.target >> kRangeShift) + 1];
    for (std::size_t i = 1; i <= num_ranges; ++i) starts[i] += starts[i - 1];
    sorted.resize(recs.size());
    cursor_.assign(starts.begin(), starts.end() - 1);
    for (const PushRec& r : recs) sorted[cursor_[r.target >> kRangeShift]++] = r;
  }

 private:
  std::vector<std::uint32_t> cursor_;  ///< scratch for the counting sort
};

/// Per-host reusable buffers for the staged drains. The per-round record
/// traffic (one PushRec per edge relaxation) previously churned fresh
/// vectors every round; pooling them keeps the allocations warm across the
/// whole phase. Capacities only grow; clear() is what resets contents.
struct DrainScratch {
  std::vector<ChunkRecs> chunks;             ///< Phase-A output, per entry chunk
  std::vector<std::vector<PushRec>> raw;     ///< Phase-A record buffer, per chunk
  std::vector<std::vector<PushRec>> range_recs;  ///< SBBC pull-mode buffer, per range
  /// MRBC pull-mode buffer, per range: packed (drain ordinal << 32 | target)
  /// keys. The full record is reconstructed at replay time — the frontier
  /// slots a pull reads are frozen for the whole fused pass, so deferring
  /// the (dist, sigma) loads is exact and the sort works on bare u64s.
  std::vector<std::vector<std::uint64_t>> range_keys;
};

/// Side-list append captured during replay: (global push ordinal, lid).
/// Sorting by ordinal reconstructs the exact sequential append order.
using OrdLid = std::pair<std::uint64_t, graph::VertexId>;

/// Global ordinal of in-chunk push `ord` in chunk `c`: chunk-major order.
inline std::uint64_t push_ordinal(std::size_t c, std::uint32_t ord) {
  return (static_cast<std::uint64_t>(c) << 32) | ord;
}

}  // namespace mrbc::core
