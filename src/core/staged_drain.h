#pragma once
// Shared machinery for the deterministic two-phase parallel worklist drain
// used by the MRBC and SBBC compute kernels (see the design comment in
// core/mrbc.cpp). Phase A records each drained entry's neighbor pushes into
// per-chunk buffers bucketed by the target lid's 64-aligned range; Phase B
// replays every range's pushes in (chunk index, in-chunk order) — the exact
// sequential push order — with ranges running concurrently because they are
// disjoint in everything a push mutates.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mrbc::core {

/// 64 lids per replay range: one DynamicBitset word, so concurrent ranges
/// never share a substrate flag word.
constexpr std::uint32_t kRangeShift = 6;

inline std::size_t num_drain_ranges(std::size_t num_proxies) {
  return (num_proxies + (std::size_t{1} << kRangeShift) - 1) >> kRangeShift;
}

/// One recorded neighbor push awaiting ordered replay.
struct PushRec {
  graph::VertexId target = 0;
  std::uint32_t sidx = 0;   ///< source index (MRBC); unused by SBBC
  std::uint32_t dist = 0;   ///< forward phase only
  double value = 0;         ///< sigma (forward) / contribution (backward)
  std::uint32_t ord = 0;    ///< in-chunk sequential push index
};

/// Phase-A output of one entry chunk: pushes counting-sorted (stably) into
/// contiguous per-range segments.
struct ChunkRecs {
  std::vector<PushRec> sorted;
  std::vector<std::uint32_t> starts;  ///< num_ranges + 1 offsets into sorted
  std::uint64_t work_items = 0;

  void bucket_by_range(std::vector<PushRec>&& recs, std::size_t num_ranges) {
    starts.assign(num_ranges + 1, 0);
    for (const PushRec& r : recs) ++starts[(r.target >> kRangeShift) + 1];
    for (std::size_t i = 1; i <= num_ranges; ++i) starts[i] += starts[i - 1];
    sorted.resize(recs.size());
    std::vector<std::uint32_t> cursor(starts.begin(), starts.end() - 1);
    for (const PushRec& r : recs) sorted[cursor[r.target >> kRangeShift]++] = r;
  }
};

/// Side-list append captured during replay: (global push ordinal, lid).
/// Sorting by ordinal reconstructs the exact sequential append order.
using OrdLid = std::pair<std::uint64_t, graph::VertexId>;

/// Global ordinal of in-chunk push `ord` in chunk `c`: chunk-major order.
inline std::uint64_t push_ordinal(std::size_t c, std::uint32_t ord) {
  return (static_cast<std::uint64_t>(c) << 32) | ord;
}

}  // namespace mrbc::core
