#pragma once
// Min-Rounds BC in the D-Galois execution model (Section 4 of the paper):
// the pipelined APSP forward phase (Alg. 3) and the timestamp-reversal
// accumulation phase (Alg. 5) expressed as vertex operators over a
// partitioned graph, with Gluon-style proxy synchronization and the
// paper's optimizations:
//
//   * Section 4.3 data structures: dense per-source array + flat-map
//     distance index (mrbc_state.h);
//   * delayed synchronization: a vertex's (dist, sigma) is broadcast to
//     its proxies only in the round r = d_sv + l_v(d_sv, s) when it is
//     final, and its dependency only in round A_sv = R - tau_sv + 1;
//     mirrors reduce partial contributions eagerly with Gluon
//     reduce-reset semantics, which is what keeps partial sigma / delta
//     sums exact;
//   * source batching (Lemma 8): k sources per execution, at most
//     2(k + H) + O(1) rounds per batch where H is the largest finite
//     distance from the batch.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bc_common.h"
#include "engine/cluster.h"
#include "partition/partition.h"

namespace mrbc::core {

/// Forward-phase drain direction. kAuto switches per host per round between
/// the push drain (iterate the frontier, relax out-edges) and the pull drain
/// (scan vertices with live labels, gather from frontier in-neighbors via
/// the bitset planes) on a deterministic frontier-density heuristic — the
/// Beamer-style direction optimization, restated so the pull rounds replay
/// contributions in the exact push order and stay bit-identical. Shared by
/// MRBC and the SBBC baseline.
enum class Direction : std::uint8_t { kAuto, kPush, kPull };

struct MrbcOptions {
  partition::HostId num_hosts = 4;
  partition::Policy policy = partition::Policy::kCartesianVertexCut;
  std::uint32_t batch_size = 32;
  /// The Section 4.3 delayed-synchronization optimization. When false,
  /// masters additionally broadcast every intermediate label change
  /// (Gluon's default update-tracking behavior), modelling the extra
  /// traffic the optimization removes; algorithm results are identical.
  bool delayed_sync = true;
  /// Retain per-source dist/sigma/delta tables in the result (tests).
  bool collect_tables = false;
  /// Worklist entries per chunk for the intra-host parallel drain. Rounds
  /// draining more than this many (lid, sidx) entries use the two-phase
  /// staged kernel (parallel push generation, then per-target-range replay
  /// in sequential push order); smaller rounds drain directly. The grain is
  /// part of the deterministic decomposition — results are bit-identical
  /// for any thread count at a fixed grain, but changing the grain changes
  /// which path small rounds take.
  std::size_t drain_grain = 64;
  /// Forward drain direction policy. Only staged rounds (drains larger than
  /// drain_grain) consider pulling; sub-grain rounds always use the inline
  /// push drain. Results, stats, and checkpoint bytes are identical for all
  /// three settings on valid runs — the knob trades scan work for push work.
  Direction direction = Direction::kAuto;
  /// kAuto enters pull when the frontier's out-degree sum reaches
  /// live_indeg / pull_alpha, where live_indeg is the in-degree sum of local
  /// vertices with at least one non-final source — the exact cost of a pull
  /// scan, since fully-final vertices are skipped in O(1) off their zero
  /// avail word. A pulling host stays in pull until the frontier falls below
  /// live_indeg / pull_beta — Beamer-style alpha/beta hysteresis, evaluated
  /// per host from thread-count-independent integer inputs. Pull pays off
  /// when live_indeg shrinks well below the frontier degree, which happens
  /// at small batch sizes (batching pipelines a vertex's per-source sends
  /// across rounds, so larger batches thin each round's frontier while
  /// keeping most vertices live — kAuto correctly stays in push there).
  double pull_alpha = 1.0;
  double pull_beta = 2.0;
  /// Gather pull rounds through a packed copy of the host's in-adjacency
  /// with 32-bit offsets (the master CSR keys edges with 64-bit EdgeId),
  /// halving the offset footprint the gather streams through. Built lazily
  /// on the first pull round, so push-only runs never pay for it. Pure
  /// memory-layout optimization — neighbor order is preserved, so results
  /// are bit-identical with it on or off (micro_kernels has the A/B row).
  bool packed_gather = true;
  sim::ClusterOptions cluster;

  // ---- Durable restart-from-disk checkpoints ------------------------------
  /// When non-empty, every coordinated checkpoint (and every batch
  /// boundary) is additionally persisted to <checkpoint_dir>/mrbc.ckpt as a
  /// versioned crc32-framed snapshot (engine/snapshot.h), so a killed
  /// process can be restarted with `resume` and produce bit-identical
  /// scores and round counts. The snapshot embeds a configuration
  /// fingerprint; resuming under different options or sources throws
  /// sim::SnapshotError.
  std::string checkpoint_dir;
  /// Continue from <checkpoint_dir>/mrbc.ckpt instead of starting fresh.
  /// Throws sim::SnapshotError if the file is missing, corrupt, or was
  /// written by a different configuration.
  bool resume = false;
  /// Test hook: stop the run (MrbcRun::halted = true, partial results)
  /// after this many durable snapshot writes — simulates a process killed
  /// right after persisting. 0 disables.
  std::size_t halt_after_checkpoints = 0;
  /// Cooperative-shutdown hook: when set and the pointee becomes true, the
  /// run stops (MrbcRun::halted = true) at the next durable snapshot write
  /// — the snapshot on disk is the state to resume from. bc_tool points
  /// this at its SIGINT/SIGTERM flag so a signal means checkpoint-then-exit
  /// instead of dying mid-write. Only consulted when checkpointing is on.
  const std::atomic<bool>* halt_flag = nullptr;
};

struct MrbcRun {
  BcResult result;
  sim::RunStats forward;   ///< summed over batches
  sim::RunStats backward;  ///< summed over batches
  std::size_t num_batches = 0;
  std::size_t anomalies = 0;  ///< pipelining-invariant violations (must be 0)
  /// Host-rounds the forward phase drained in pull mode (direction
  /// optimization diagnostic). In-process only — not persisted in durable
  /// snapshots, so a resumed run counts post-resume rounds only.
  std::size_t forward_pull_rounds = 0;
  double replication_factor = 0.0;
  /// True when the run stopped early via halt_after_checkpoints (the
  /// durable snapshot on disk is the state to resume from).
  bool halted = false;

  sim::RunStats total() const {
    sim::RunStats t = forward;
    t += backward;
    return t;
  }
  /// Rounds per source, the paper's Table 1 normalization.
  double rounds_per_source() const {
    return result.sources.empty()
               ? 0.0
               : static_cast<double>(forward.rounds + backward.rounds) /
                     static_cast<double>(result.sources.size());
  }
};

/// Runs MRBC over `sources` (partitioning `g` internally).
MrbcRun mrbc_bc(const Graph& g, const std::vector<graph::VertexId>& sources,
                const MrbcOptions& options = {});

/// Same, over a pre-built partition (options.num_hosts/policy ignored).
MrbcRun mrbc_bc(const partition::Partition& part, const std::vector<graph::VertexId>& sources,
                const MrbcOptions& options = {});

}  // namespace mrbc::core
