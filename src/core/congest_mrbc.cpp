#include "core/congest_mrbc.h"

#include <algorithm>
#include <cassert>

#include "engine/congest.h"
#include "graph/algorithms.h"

namespace mrbc::core {

using graph::kInfDist;
using graph::kInvalidVertex;

namespace {

/// All CONGEST traffic uses one small POD message type; `kind` selects the
/// payload interpretation. Every field is O(log n) bits except sigma/m,
/// which are doubles per the paper's implementation note (Section 5.2).
struct Msg {
  enum Kind : std::uint8_t {
    kApsp,         ///< a=source idx, b=dist, x=sigma        (Alg. 3 step 9)
    kBfsExplore,   ///< a=depth                              (Alg. 3 step 1)
    kBfsAdopt,     ///< child -> parent tree registration    (Alg. 3 step 1)
    kConvDstar,    ///< a=d* convergecast                    (Alg. 4 steps 4/8)
    kBcastDiam,    ///< a=D, b=global final round R          (Alg. 4 steps 1/9)
    kAcc,          ///< a=source idx, x=m=(1+delta)/sigma    (Alg. 5 step 7)
    kCountExplore, ///< UG BFS for the n-computation          (Alg. 3 step 6)
    kCountAdopt,   ///< child -> parent registration (n-computation tree)
    kCountSubtree, ///< a=subtree vertex count convergecast
    kCountN,       ///< a=n broadcast down the tree
  };
  std::uint8_t kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double x = 0.0;
};

/// Per-vertex processor state for Algorithms 3-5.
struct VertexState {
  // --- Algorithm 3: the list L_v and per-source data ------------------
  // (dist, source index) pairs in lexicographic order; `sent` is the count
  // of leading entries already transmitted (sends happen in list order, and
  // no insertion can land before a sent entry — Lemma 2/3).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  std::size_t sent = 0;
  std::vector<std::uint32_t> dist;   // per source idx; kInfDist if absent
  std::vector<double> sigma;
  std::vector<std::uint32_t> tau;    // send timestamp; 0 = not sent
  std::vector<std::vector<graph::VertexId>> preds;
  std::vector<double> delta;

  // --- Algorithm 4: BFS tree + convergecast ---------------------------
  graph::VertexId parent = kInvalidVertex;
  std::uint32_t depth = 0;
  bool explored = false;             // sent own BFS explore
  std::uint32_t children_final_round = 0;
  std::vector<graph::VertexId> children;
  std::uint32_t child_reports = 0;
  std::uint32_t dstar_children = 0;
  bool fv = false;                   // Alg. 4 once-only flag

  // --- Alg. 3 steps 5-6: n-computation over UG (Theorem 1, part I.3) ---
  graph::VertexId ug_parent = kInvalidVertex;
  bool ug_explored = false;
  std::uint32_t ug_children_final_round = 0;
  std::vector<graph::VertexId> ug_children;
  std::uint32_t ug_reports = 0;
  std::uint32_t ug_subtotal = 0;  // vertices counted below (and incl.) v
  bool ug_sent = false;
  std::uint32_t known_n = 0;

  // --- Algorithm 5: accumulation schedule ------------------------------
  // Source indices ordered by decreasing tau (increasing A_sv); cursor
  // walks it as rounds fire.
  std::vector<std::uint32_t> acc_order;
  std::size_t acc_cursor = 0;
};

struct Runner {
  const Graph& g;
  const std::vector<graph::VertexId>& sources;
  bool all_sources;  // full APSP (enables Alg. 4)
  CongestOptions options;
  congest::Network<Msg> net;
  std::vector<VertexState> state;
  CongestMetrics metrics;

  // Set once v1 (vertex 0) computes the diameter: the round after which
  // every vertex has received the broadcast.
  std::uint32_t final_round = 0;

  Runner(const Graph& graph, const std::vector<graph::VertexId>& srcs, bool all)
      : g(graph), sources(srcs), all_sources(all), net(graph) {
    const graph::VertexId n = g.num_vertices();
    const std::size_t k = sources.size();
    state.resize(n);
    for (auto& vs : state) {
      vs.dist.assign(k, kInfDist);
      vs.sigma.assign(k, 0.0);
      vs.tau.assign(k, 0);
      vs.preds.assign(k, {});
      vs.delta.assign(k, 0.0);
    }
    for (std::size_t sidx = 0; sidx < k; ++sidx) {
      auto& vs = state[sources[sidx]];
      vs.list.emplace_back(0u, static_cast<std::uint32_t>(sidx));
      vs.dist[sidx] = 0;
      vs.sigma[sidx] = 1.0;
    }
  }

  // ----- Algorithm 3 steps 11-17: apply a received APSP message --------
  void apply_apsp(graph::VertexId v, graph::VertexId from, const Msg& m) {
    auto& vs = state[v];
    const std::uint32_t sidx = m.a;
    const std::uint32_t d_new = m.b + 1;
    const std::uint32_t d_old = vs.dist[sidx];
    if (d_old == kInfDist) {
      insert_entry(vs, d_new, sidx);
      vs.dist[sidx] = d_new;
      vs.sigma[sidx] = m.x;
      vs.preds[sidx] = {from};
    } else if (d_old == d_new) {
      if (vs.tau[sidx] != 0) ++metrics.anomalies;  // update after finalization
      vs.sigma[sidx] += m.x;
      vs.preds[sidx].push_back(from);
    } else if (d_old > d_new) {
      if (vs.tau[sidx] != 0) ++metrics.anomalies;
      remove_entry(vs, d_old, sidx);
      insert_entry(vs, d_new, sidx);
      vs.dist[sidx] = d_new;
      vs.sigma[sidx] = m.x;
      vs.preds[sidx] = {from};
    }
    // d_old < d_new: stale message, ignored.
  }

  static void insert_entry(VertexState& vs, std::uint32_t d, std::uint32_t sidx) {
    const auto entry = std::make_pair(d, sidx);
    auto it = std::lower_bound(vs.list.begin(), vs.list.end(), entry);
    vs.list.insert(it, entry);
  }

  static void remove_entry(VertexState& vs, std::uint32_t d, std::uint32_t sidx) {
    const auto entry = std::make_pair(d, sidx);
    auto it = std::lower_bound(vs.list.begin(), vs.list.end(), entry);
    assert(it != vs.list.end() && *it == entry);
    vs.list.erase(it);
  }

  // ----- Algorithm 3 steps 8-9: transmit entries whose round arrived ---
  void send_due_entries(graph::VertexId v, std::uint32_t r) {
    auto& vs = state[v];
    while (vs.sent < vs.list.size()) {
      const auto [d, sidx] = vs.list[vs.sent];
      const std::uint32_t pos = static_cast<std::uint32_t>(vs.sent) + 1;  // 1-based l(d,s)
      if (d + pos > r) break;
      if (d + pos < r) ++metrics.anomalies;  // a send round was skipped
      vs.tau[sidx] = r;
      Msg m{Msg::kApsp, sidx, d, vs.sigma[sidx]};
      net.send_to_out_neighbors(v, m);
      metrics.apsp_messages += g.out_degree(v);
      ++vs.sent;
    }
  }

  // ----- Algorithm 4 helpers -------------------------------------------
  void bfs_round(std::uint32_t r) {
    const graph::VertexId n = g.num_vertices();
    if (r == 1) {
      auto& root = state[0];
      root.parent = 0;
      root.depth = 0;
      root.explored = true;
      root.children_final_round = 3;  // adopts from depth-1 children arrive in round 3
      net.send_to_out_neighbors(0, Msg{Msg::kBfsExplore, 0, 0, 0.0});
      metrics.aux_messages += g.out_degree(0);
    }
    for (graph::VertexId v = 0; v < n; ++v) {
      auto& vs = state[v];
      if (vs.parent != kInvalidVertex && !vs.explored) {
        vs.explored = true;
        vs.children_final_round = r + 2;
        net.send(v, vs.parent, Msg{Msg::kBfsAdopt, 0, 0, 0.0});
        net.send_to_out_neighbors(v, Msg{Msg::kBfsExplore, vs.depth, 0, 0.0});
        metrics.aux_messages += 1 + g.out_degree(v);
      }
    }
  }

  void finalizer_round(std::uint32_t r) {
    const graph::VertexId n = g.num_vertices();
    for (graph::VertexId v = 0; v < n; ++v) {
      auto& vs = state[v];
      if (vs.fv || !vs.explored || r < vs.children_final_round) continue;
      if (vs.list.size() != n) continue;                   // Alg. 4 step 2
      if (vs.sent != vs.list.size()) continue;             // r >= max_s(d + l)
      if (vs.child_reports != vs.children.size()) continue;
      // d*_v: the largest shortest-path distance into v, max'd with the
      // subtree maxima reported by children (Alg. 4 steps 7-8).
      std::uint32_t dstar = 0;
      for (const auto& [d, sidx] : vs.list) dstar = std::max(dstar, d);
      dstar = std::max(dstar, vs.dstar_children);
      vs.fv = true;
      if (v != 0) {
        net.send(v, vs.parent, Msg{Msg::kConvDstar, dstar, 0, 0.0});
        ++metrics.aux_messages;
      } else {
        // v1 knows the diameter; broadcast (D, R_final) down the tree.
        metrics.diameter = dstar;
        metrics.finalizer_triggered = true;
        final_round = r + std::max<std::uint32_t>(dstar, 1);
        for (graph::VertexId c : vs.children) {
          net.send(0, c, Msg{Msg::kBcastDiam, dstar, final_round, 0.0});
          ++metrics.aux_messages;
        }
      }
    }
  }

  void handle_aux(graph::VertexId v, graph::VertexId from, const Msg& m) {
    auto& vs = state[v];
    switch (m.kind) {
      case Msg::kBfsExplore:
        if (vs.parent == kInvalidVertex || (!vs.explored && from < vs.parent)) {
          vs.parent = from;
          vs.depth = m.a + 1;
        }
        break;
      case Msg::kBfsAdopt:
        vs.children.push_back(from);
        break;
      case Msg::kConvDstar:
        ++vs.child_reports;
        vs.dstar_children = std::max(vs.dstar_children, m.a);
        break;
      case Msg::kBcastDiam:
        if (final_round == 0) final_round = m.b;
        metrics.diameter = m.a;
        for (graph::VertexId c : vs.children) {
          net.send(v, c, Msg{Msg::kBcastDiam, m.a, m.b, 0.0});
          ++metrics.aux_messages;
        }
        break;
      default:
        break;
    }
  }

  // ----- Alg. 3 steps 5-6: compute and broadcast n over UG --------------
  // A BFS tree over the undirected closure (channels are bidirectional),
  // subtree-count convergecast to the root, then a broadcast of the total.
  // Completes in O(Du) rounds and O(m + n) messages.
  void run_count_phase() {
    const graph::VertexId n = g.num_vertices();
    const std::size_t messages_before = net.total_messages();
    auto send_ug = [this](graph::VertexId from, const Msg& m) {
      net.send_to_out_neighbors(from, m);
      net.send_to_in_neighbors(from, m);
    };
    std::uint32_t r = 0;
    while (true) {
      ++r;
      net.advance_round();
      for (graph::VertexId v = 0; v < n; ++v) {
        for (const auto& [from, m] : net.inbox(v)) {
          auto& vs = state[v];
          switch (m.kind) {
            case Msg::kCountExplore:
              if (vs.ug_parent == kInvalidVertex || (!vs.ug_explored && from < vs.ug_parent)) {
                vs.ug_parent = from;
              }
              break;
            case Msg::kCountAdopt:
              vs.ug_children.push_back(from);
              break;
            case Msg::kCountSubtree:
              ++vs.ug_reports;
              vs.ug_subtotal += m.a;
              break;
            case Msg::kCountN:
              if (vs.known_n == 0) {
                vs.known_n = m.a;
                for (graph::VertexId c : vs.ug_children) {
                  net.send(v, c, Msg{Msg::kCountN, m.a, 0, 0.0});
                }
              }
              break;
            default:
              break;
          }
        }
      }
      // Send phase.
      if (r == 1) {
        auto& root = state[0];
        root.ug_parent = 0;
        root.ug_explored = true;
        root.ug_children_final_round = 3;
        send_ug(0, Msg{Msg::kCountExplore, 0, 0, 0.0});
      }
      bool all_known = true;
      for (graph::VertexId v = 0; v < n; ++v) {
        auto& vs = state[v];
        if (vs.ug_parent != kInvalidVertex && !vs.ug_explored) {
          vs.ug_explored = true;
          vs.ug_children_final_round = r + 2;
          net.send(v, vs.ug_parent, Msg{Msg::kCountAdopt, 0, 0, 0.0});
          send_ug(v, Msg{Msg::kCountExplore, 0, 0, 0.0});
        }
        if (vs.ug_explored && !vs.ug_sent && r >= vs.ug_children_final_round &&
            vs.ug_reports == vs.ug_children.size()) {
          vs.ug_sent = true;
          const std::uint32_t subtree = vs.ug_subtotal + 1;
          if (v != 0) {
            net.send(v, vs.ug_parent, Msg{Msg::kCountSubtree, subtree, 0, 0.0});
          } else {
            vs.known_n = subtree;
            for (graph::VertexId c : vs.ug_children) {
              net.send(0, c, Msg{Msg::kCountN, subtree, 0, 0.0});
            }
          }
        }
        all_known = all_known && state[v].known_n != 0;
      }
      if (all_known && !net.messages_in_flight()) break;
      if (r > 6 * static_cast<std::uint32_t>(n) + 16) break;  // not weakly connected
    }
    metrics.count_rounds = r;
    metrics.count_messages = net.total_messages() - messages_before;
    // The computed count must equal the true n on weakly connected inputs.
    if (state[0].known_n != g.num_vertices()) ++metrics.anomalies;
  }

  // ----- Forward phase driver ------------------------------------------
  std::uint32_t run_forward() {
    const graph::VertexId n = g.num_vertices();
    const std::uint32_t cap = 2 * n;
    const bool use_finalizer =
        all_sources && options.termination == Termination::kFinalizer;
    const bool detect = options.termination == Termination::kGlobalDetection;

    std::uint32_t r = 0;
    while (true) {
      ++r;
      net.advance_round();  // deliver messages sent in round r-1
      // Receive phase (steps 11-17 + Alg. 4 traffic).
      for (graph::VertexId v = 0; v < n; ++v) {
        for (const auto& [from, m] : net.inbox(v)) {
          if (m.kind == Msg::kApsp) {
            apply_apsp(v, from, m);
          } else {
            handle_aux(v, from, m);
          }
        }
      }
      // Send phase (steps 8-9; Alg. 4 runs alongside in the same rounds).
      std::size_t sends_before = net.total_messages();
      for (graph::VertexId v = 0; v < n; ++v) send_due_entries(v, r);
      if (use_finalizer) {
        bfs_round(r);
        finalizer_round(r);
      }
      const bool sent_any = net.total_messages() != sends_before;

      if (use_finalizer && final_round != 0 && r >= final_round) break;
      if (r >= cap && !detect) break;
      if (detect && !sent_any && !net.messages_in_flight()) {
        bool pending = false;
        for (graph::VertexId v = 0; v < n && !pending; ++v) {
          pending = state[v].sent < state[v].list.size();
        }
        if (!pending) break;
      }
      if (r >= 4 * n + 16) break;  // safety net; unreachable in correct runs
    }
    metrics.forward_rounds = r;
    return r;
  }

  // ----- Algorithm 5: accumulation phase -------------------------------
  void run_accumulation(std::uint32_t R) {
    const graph::VertexId n = g.num_vertices();
    // Precompute each vertex's send schedule: source indices by decreasing
    // tau (A_sv = R - tau_sv is increasing along acc_order).
    for (graph::VertexId v = 0; v < n; ++v) {
      auto& vs = state[v];
      for (std::size_t sidx = 0; sidx < sources.size(); ++sidx) {
        if (vs.tau[sidx] != 0) vs.acc_order.push_back(static_cast<std::uint32_t>(sidx));
      }
      std::sort(vs.acc_order.begin(), vs.acc_order.end(),
                [&vs](std::uint32_t a, std::uint32_t b) { return vs.tau[a] > vs.tau[b]; });
    }
    // Fresh message flow on the same network; rounds r = 0..R (Alg. 5 step 6).
    std::size_t rounds = 0;
    for (std::uint32_t r = 0; r <= R; ++r) {
      net.advance_round();
      ++rounds;
      bool any_activity = net.messages_in_flight();
      for (graph::VertexId v = 0; v < n; ++v) {
        auto& vs = state[v];
        for (const auto& [from, m] : net.inbox(v)) {
          (void)from;
          // Leftover Alg. 4 broadcasts from the last forward round may
          // still be in flight; only accumulation payloads matter here.
          if (m.kind != Msg::kAcc) continue;
          vs.delta[m.a] += vs.sigma[m.a] * m.x;
        }
        if (!net.inbox(v).empty()) any_activity = true;
        // Fire A_sv = R - tau_sv (step 7). Timestamps are distinct per
        // vertex, so at most one source fires per round.
        while (vs.acc_cursor < vs.acc_order.size()) {
          const std::uint32_t sidx = vs.acc_order[vs.acc_cursor];
          const std::uint32_t a_sv = R - vs.tau[sidx];
          if (a_sv != r) break;
          const double m_val = (1.0 + vs.delta[sidx]) / vs.sigma[sidx];
          for (graph::VertexId p : vs.preds[sidx]) {
            net.send(v, p, Msg{Msg::kAcc, sidx, 0, m_val});
            ++metrics.accumulation_messages;
          }
          ++vs.acc_cursor;
          any_activity = true;
        }
      }
      if (!any_activity && !net.messages_in_flight()) {
        bool pending = false;
        for (graph::VertexId v = 0; v < n && !pending; ++v) {
          pending = state[v].acc_cursor < state[v].acc_order.size();
        }
        if (!pending) break;
      }
    }
    metrics.accumulation_rounds = rounds;
  }

  CongestRun collect() {
    const graph::VertexId n = g.num_vertices();
    const std::size_t k = sources.size();
    CongestRun run;
    run.result.sources = sources;
    run.result.dist.assign(k, std::vector<std::uint32_t>(n, kInfDist));
    run.result.sigma.assign(k, std::vector<double>(n, 0.0));
    run.result.delta.assign(k, std::vector<double>(n, 0.0));
    run.result.bc.assign(n, 0.0);
    for (graph::VertexId v = 0; v < n; ++v) {
      const auto& vs = state[v];
      for (std::size_t sidx = 0; sidx < k; ++sidx) {
        run.result.dist[sidx][v] = vs.dist[sidx];
        run.result.sigma[sidx][v] = vs.sigma[sidx];
        run.result.delta[sidx][v] = vs.delta[sidx];
        if (sources[sidx] != v) run.result.bc[v] += vs.delta[sidx];
      }
    }
    metrics.max_channel_congestion = net.max_channel_congestion();
    run.metrics = metrics;
    return run;
  }
};

CongestRun run_congest(const Graph& g, const std::vector<graph::VertexId>& sources,
                       bool all_sources, const CongestOptions& options) {
  if (g.num_vertices() == 0) return {};
  Runner runner(g, sources, all_sources);
  runner.options = options;
  if (!options.n_known && all_sources) runner.run_count_phase();
  const std::uint32_t R = runner.run_forward();
  runner.run_accumulation(R);
  return runner.collect();
}

}  // namespace

CongestRun congest_mrbc_all_sources(const Graph& g, const CongestOptions& options) {
  std::vector<graph::VertexId> sources(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) sources[v] = v;
  return run_congest(g, sources, /*all_sources=*/true, options);
}

CongestRun congest_mrbc(const Graph& g, const std::vector<graph::VertexId>& sources,
                        const CongestOptions& options) {
  CongestOptions opts = options;
  opts.termination = Termination::kGlobalDetection;
  return run_congest(g, sources, /*all_sources=*/false, opts);
}

std::uint32_t max_finite_distance(const std::vector<std::vector<std::uint32_t>>& dist) {
  std::uint32_t h = 0;
  for (const auto& row : dist) {
    for (std::uint32_t d : row) {
      if (d != kInfDist) h = std::max(h, d);
    }
  }
  return h;
}

}  // namespace mrbc::core
