#pragma once
// Minimal monoid/semiring algebra in the style of the Cyclops Tensor
// Framework, which Maximal-Frontier BC (Solomonik et al., SC'17) is built
// on. MFBC expresses Bellman-Ford shortest paths as repeated sparse
// matrix-vector products over a (min, +)-like semiring whose elements carry
// (distance, path count) pairs.

#include <concepts>
#include <cstdint>

namespace mrbc::matrix {

/// A commutative monoid: identity element + associative combine.
template <typename M>
concept Monoid = requires(typename M::Value a, typename M::Value b) {
  { M::identity() } -> std::convertible_to<typename M::Value>;
  { M::combine(a, b) } -> std::convertible_to<typename M::Value>;
};

/// The MFBC forward-phase element: tentative distance + number of shortest
/// paths at that distance.
struct DistSigma {
  std::uint32_t dist = static_cast<std::uint32_t>(-1);
  double sigma = 0.0;

  friend bool operator==(const DistSigma&, const DistSigma&) = default;
};

/// (min, +) style monoid on DistSigma: smaller distance wins; equal
/// distances accumulate path counts (the BFS sigma recurrence).
struct MinPlusSigma {
  using Value = DistSigma;
  static Value identity() { return {}; }
  static Value combine(const Value& a, const Value& b) {
    if (a.dist < b.dist) return a;
    if (b.dist < a.dist) return b;
    if (a.dist == static_cast<std::uint32_t>(-1)) return a;
    return {a.dist, a.sigma + b.sigma};
  }
  /// Edge "multiplication": traversing one unweighted edge.
  static Value extend(const Value& v) {
    if (v.dist == static_cast<std::uint32_t>(-1)) return v;
    return {v.dist + 1, v.sigma};
  }
};

/// Additive monoid on doubles (dependency accumulation).
struct PlusDouble {
  using Value = double;
  static Value identity() { return 0.0; }
  static Value combine(Value a, Value b) { return a + b; }
};

}  // namespace mrbc::matrix
