#include "matrix/dist_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/threading.h"
#include "util/timer.h"

namespace mrbc::matrix {

using graph::kInfDist;

namespace {

/// Balanced pairwise sum over a power-of-two-length span: the canonical
/// reduction-tree shape (see dist_engine.h header comment).
double pairwise_tree(const double* q, std::uint32_t len) {
  if (len == 1) return q[0];
  const std::uint32_t half = len / 2;
  return pairwise_tree(q, half) + pairwise_tree(q + half, half);
}

std::uint64_t cell_key(VertexId v, std::uint32_t sidx) {
  return (static_cast<std::uint64_t>(v) << 32) | sidx;
}

}  // namespace

DistBcEngine::DistBcEngine(const Graph& g, const DistBcOptions& opts)
    : g_(&g),
      opts_(opts),
      grid_(ProcessGrid::make(std::max<HostId>(opts.num_hosts, 1), opts.replication)),
      mat_(g, grid_),
      net_(grid_.hosts),
      n_(g.num_vertices()) {
  net_.set_delivery(opts_.delivery);
  const HostId H = grid_.hosts;
  scratch_.resize(H);
  partials_.resize(H);
  staged_entries_.resize(H);
  staged_slices_.resize(static_cast<std::size_t>(H) * grid_.layers);
  delta_partials_.resize(H);
  staged_delta_.resize(H);
  group_changed_.resize(grid_.rows);
}

void DistBcEngine::begin_batch(const std::vector<VertexId>& batch) {
  batch_ = batch;
  k_ = batch.size();
  table_.assign(static_cast<std::size_t>(n_) * k_, DistSigma{});
  delta_.assign(static_cast<std::size_t>(n_) * k_, 0.0);
  max_level_ = 0;
  frontier_.clear();
  for (std::size_t sidx = 0; sidx < k_; ++sidx) {
    table_[static_cast<std::size_t>(batch[sidx]) * k_ + sidx] = {0, 1.0};
    frontier_.push_back({batch[sidx], static_cast<std::uint32_t>(sidx), {0, 1.0}});
  }
  std::sort(frontier_.begin(), frontier_.end(), [](const Entry& a, const Entry& b) {
    return cell_key(a.v, a.sidx) < cell_key(b.v, b.sidx);
  });
  const std::uint32_t ppl = grid_.panels_per_layer();
  for (HostId h = 0; h < grid_.hosts; ++h) {
    const std::size_t rk = static_cast<std::size_t>(grid_.row_size(grid_.row_of(h), n_)) * k_;
    scratch_[h].cells.assign(rk, DistSigma{});
    scratch_[h].mark.assign(rk, 0);
    scratch_[h].panels.assign(rk * ppl, 0.0);
    scratch_[h].touched.clear();
  }
}

std::vector<std::vector<util::SendBuffer>> DistBcEngine::make_buffers() const {
  return std::vector<std::vector<util::SendBuffer>>(grid_.hosts,
                                                    std::vector<util::SendBuffer>(grid_.hosts));
}

void DistBcEngine::write_entries(util::SendBuffer& buf, const Entry* entries,
                                 std::size_t count) const {
  comm::CodecWriter w(buf, opts_.delivery.codec);
  for (std::size_t i = 0; i < count; ++i) {
    w.value_u32(entries[i].v);
    w.value_u32(entries[i].sidx);
    w.value_u32(entries[i].val.dist);
    w.f64(entries[i].val.sigma);
  }
}

void DistBcEngine::read_entries(util::RecvBuffer& buf, std::vector<Entry>& out) const {
  comm::CodecReader r(buf, opts_.delivery.codec);
  while (buf.remaining() > 0) {
    Entry e;
    e.v = r.value_u32();
    e.sidx = r.value_u32();
    e.val.dist = r.value_u32();
    e.val.sigma = r.f64();
    out.push_back(e);
  }
}

std::vector<std::size_t> DistBcEngine::layer_slices(const Entry* list, std::size_t count) const {
  std::vector<std::size_t> slice(grid_.layers + 1, count);
  std::size_t i = 0;
  slice[0] = 0;
  for (HostId l = 0; l < grid_.layers; ++l) {
    while (i < count && grid_.vertex_layer(list[i].v, n_) == l) ++i;
    slice[l + 1] = i;
  }
  return slice;
}

void DistBcEngine::queue_column_broadcast(std::vector<std::vector<util::SendBuffer>>& buffers,
                                          HostId r, const Entry* base,
                                          const std::vector<std::size_t>& slices) const {
  const HostId pr = grid_.rows;
  const HostId c = grid_.layers;
  for (HostId l = 0; l < c; ++l) {
    const std::size_t len = slices[l + 1] - slices[l];
    if (len == 0) continue;
    for (HostId lp = 0; lp < c; ++lp) {
      const std::size_t cb = slices[l] + len * lp / c;
      const std::size_t ce = slices[l] + len * (lp + 1) / c;
      if (cb == ce) continue;
      const HostId sender = grid_.host_at(r, lp);
      for (HostId r2 = 0; r2 < pr; ++r2) {
        if (r2 == r) continue;
        write_entries(buffers[sender][grid_.host_at(r2, l)], base + cb, ce - cb);
      }
    }
  }
}

void DistBcEngine::stage_broadcast_chunk(HostId src, HostId dst, util::RecvBuffer& rbuf) {
  // One decoded copy per chunk: the designated receiver is the sender's
  // first peer row (every peer row gets identical bytes).
  const HostId r = grid_.row_of(src);
  if (grid_.row_of(dst) != (r == 0 ? 1 : 0)) return;
  read_entries(rbuf, staged_slices_[static_cast<std::size_t>(src) * grid_.layers +
                                    grid_.layer_of(dst)]);
}

void DistBcEngine::append_slice(std::vector<Entry>& out, HostId r, HostId l,
                                const Entry* local_base,
                                const std::vector<std::size_t>& local_slices) const {
  if (grid_.rows > 1) {
    for (HostId lp = 0; lp < grid_.layers; ++lp) {
      const std::vector<Entry>& chunk =
          staged_slices_[static_cast<std::size_t>(grid_.host_at(r, lp)) * grid_.layers + l];
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  } else {
    out.insert(out.end(), local_base + local_slices[l], local_base + local_slices[l + 1]);
  }
}

DistBcStep DistBcEngine::forward_step() {
  const HostId H = grid_.hosts;
  const HostId pr = grid_.rows;
  const HostId c = grid_.layers;
  DistBcStep step;
  step.host_seconds.assign(H, 0.0);
  step.host_work.assign(H, 0.0);
  step.comm.bytes_per_host.assign(H, 0);
  step.comm.msgs_per_host.assign(H, 0);

  const std::vector<std::size_t> slice = layer_slices(frontier_.data(), frontier_.size());

  // ---- 1. per-host SpMSpV sweeps over (row, layer) tiles ----------------
  util::for_each_index(H, opts_.parallel_hosts, [&](std::size_t h) {
    util::Timer timer;
    const HostId r = grid_.row_of(static_cast<HostId>(h));
    const HostId l = grid_.layer_of(static_cast<HostId>(h));
    const Graph& tile = mat_.forward_tile(static_cast<HostId>(h));
    const VertexId rs = grid_.row_start(r, n_);
    HostScratch& s = scratch_[h];
    s.touched.clear();
    for (std::size_t i = slice[l]; i < slice[l + 1]; ++i) {
      const Entry& e = frontier_[i];
      const DistSigma cand{e.val.dist + 1, e.val.sigma};
      for (VertexId w : tile.out_neighbors(e.v)) {
        const std::size_t ci = static_cast<std::size_t>(w - rs) * k_ + e.sidx;
        step.host_work[h] += 1.0;
        if (!s.mark[ci]) {
          s.mark[ci] = 1;
          s.cells[ci] = cand;
          s.touched.emplace_back(w, e.sidx);
        } else {
          DistSigma& cur = s.cells[ci];
          if (cand.dist < cur.dist) {
            cur = cand;
          } else if (cand.dist == cur.dist) {
            cur.sigma += cand.sigma;
          }
        }
      }
    }
    std::sort(s.touched.begin(), s.touched.end());
    // Filter against the replica's table copy: a partial that cannot
    // improve the merged cell never reaches a wire (legal in the real
    // system — every group member holds the full row block).
    std::vector<Entry>& part = partials_[h];
    part.clear();
    for (const auto& [w, sidx] : s.touched) {
      const std::size_t ci = static_cast<std::size_t>(w - rs) * k_ + sidx;
      s.mark[ci] = 0;
      const DistSigma& p = s.cells[ci];
      if (p.dist <= table_[static_cast<std::size_t>(w) * k_ + sidx].dist) {
        part.push_back({w, sidx, p});
      }
    }
    step.host_seconds[h] = timer.seconds();
  });

  // ---- 2. replica-group all-reduce of partial products ------------------
  if (c > 1) {
    auto buffers = make_buffers();
    for (HostId h = 0; h < H; ++h) {
      if (partials_[h].empty()) continue;
      const HostId r = grid_.row_of(h);
      for (HostId l = 0; l < c; ++l) {
        const HostId peer = grid_.host_at(r, l);
        if (peer == h) continue;
        write_entries(buffers[h][peer], partials_[h].data(), partials_[h].size());
      }
    }
    for (auto& se : staged_entries_) se.clear();
    step.comm += net_.scatter(std::move(buffers),
                              [&](HostId src, HostId dst, util::RecvBuffer& rbuf) {
                                // Every group member merges an identical copy; the
                                // simulator decodes the one addressed to the leader
                                // and stages it for the shared merge below.
                                if (dst != grid_.group_leader(grid_.row_of(src))) return;
                                read_entries(rbuf, staged_entries_[src]);
                              });
  }

  // ---- 3. merge partials into group tables, collect changed cells -------
  std::vector<std::uint32_t> group_max(pr, 0);
  util::for_each_index(pr, opts_.parallel_hosts, [&](std::size_t r) {
    util::Timer timer;
    const VertexId rs = grid_.row_start(static_cast<HostId>(r), n_);
    HostScratch& s = scratch_[grid_.group_leader(static_cast<HostId>(r))];
    std::vector<Entry>& changed = group_changed_[r];
    changed.clear();
    for (HostId l = 0; l < c; ++l) {
      const HostId member = grid_.host_at(static_cast<HostId>(r), l);
      const std::vector<Entry>& part =
          (l == 0 || c == 1) ? partials_[member] : staged_entries_[member];
      for (const Entry& e : part) {
        DistSigma& cur = table_[static_cast<std::size_t>(e.v) * k_ + e.sidx];
        bool improved = false;
        if (e.val.dist < cur.dist) {
          cur = e.val;
          improved = true;
        } else if (e.val.dist == cur.dist) {
          cur.sigma += e.val.sigma;
          improved = true;
        }
        if (improved) {
          const std::size_t ci = static_cast<std::size_t>(e.v - rs) * k_ + e.sidx;
          if (!s.mark[ci]) {
            s.mark[ci] = 1;
            changed.push_back({e.v, e.sidx, {}});
          }
        }
      }
    }
    std::sort(changed.begin(), changed.end(), [](const Entry& a, const Entry& b) {
      return cell_key(a.v, a.sidx) < cell_key(b.v, b.sidx);
    });
    for (Entry& e : changed) {
      s.mark[static_cast<std::size_t>(e.v - rs) * k_ + e.sidx] = 0;
      e.val = table_[static_cast<std::size_t>(e.v) * k_ + e.sidx];
      group_max[r] = std::max(group_max[r], e.val.dist);
    }
    step.host_seconds[grid_.group_leader(static_cast<HostId>(r))] += timer.seconds();
  });
  for (HostId r = 0; r < pr; ++r) max_level_ = std::max(max_level_, group_max[r]);

  // ---- 4. broadcast changed cells along the layer dimension -------------
  std::vector<std::vector<std::size_t>> gslice(pr);
  {
    auto buffers = make_buffers();
    for (HostId r = 0; r < pr; ++r) {
      gslice[r] = layer_slices(group_changed_[r].data(), group_changed_[r].size());
      queue_column_broadcast(buffers, r, group_changed_[r].data(), gslice[r]);
    }
    for (auto& ss : staged_slices_) ss.clear();
    step.comm += net_.scatter(std::move(buffers),
                              [&](HostId src, HostId dst, util::RecvBuffer& rbuf) {
                                stage_broadcast_chunk(src, dst, rbuf);
                              });
  }

  // ---- assemble the next frontier (row-major, layer-minor = sorted) -----
  frontier_.clear();
  for (HostId r = 0; r < pr; ++r) {
    for (HostId l = 0; l < c; ++l) {
      append_slice(frontier_, r, l, group_changed_[r].data(), gslice[r]);
    }
  }
  step.frontier_entries = frontier_.size();
  return step;
}

DistBcStep DistBcEngine::backward_level(std::uint32_t level) {
  const HostId H = grid_.hosts;
  const HostId pr = grid_.rows;
  const HostId c = grid_.layers;
  DistBcStep step;
  step.host_seconds.assign(H, 0.0);
  step.host_work.assign(H, 0.0);
  step.comm.bytes_per_host.assign(H, 0);
  step.comm.msgs_per_host.assign(H, 0);

  // ---- level frontier from the group tables (v-major, sidx-minor) -------
  bwd_frontier_.clear();
  for (VertexId v = 0; v < n_; ++v) {
    for (std::size_t sidx = 0; sidx < k_; ++sidx) {
      const DistSigma& t = table_[static_cast<std::size_t>(v) * k_ + sidx];
      if (t.dist == level) {
        bwd_frontier_.push_back(
            {v, static_cast<std::uint32_t>(sidx),
             {level, (1.0 + delta_[static_cast<std::size_t>(v) * k_ + sidx]) / t.sigma}});
      }
    }
  }
  step.frontier_entries = bwd_frontier_.size();

  // ---- 1. broadcast firing entries along the layer dimension ------------
  // The sorted frontier decomposes into contiguous per-row ranges
  // (vertex_row is monotone in v); each range column-broadcasts exactly
  // like the forward changed lists, with the send load split across the
  // owning group's c members.
  std::vector<std::size_t> row_range(pr + 1, bwd_frontier_.size());
  {
    std::size_t i = 0;
    row_range[0] = 0;
    for (HostId r = 0; r < pr; ++r) {
      while (i < bwd_frontier_.size() && grid_.vertex_row(bwd_frontier_[i].v, n_) == r) ++i;
      row_range[r + 1] = i;
    }
  }
  std::vector<std::vector<std::size_t>> rslice(pr);
  {
    auto buffers = make_buffers();
    for (HostId r = 0; r < pr; ++r) {
      const Entry* base = bwd_frontier_.data() + row_range[r];
      rslice[r] = layer_slices(base, row_range[r + 1] - row_range[r]);
      queue_column_broadcast(buffers, r, base, rslice[r]);
    }
    for (auto& ss : staged_slices_) ss.clear();
    step.comm += net_.scatter(std::move(buffers),
                              [&](HostId src, HostId dst, util::RecvBuffer& rbuf) {
                                stage_broadcast_chunk(src, dst, rbuf);
                              });
  }
  used_frontier_.clear();
  for (HostId r = 0; r < pr; ++r) {
    for (HostId l = 0; l < c; ++l) {
      append_slice(used_frontier_, r, l, bwd_frontier_.data() + row_range[r], rslice[r]);
    }
  }

  // ---- 2. per-host dependency sweeps into per-panel partials ------------
  const std::vector<std::size_t> slice = layer_slices(used_frontier_.data(), used_frontier_.size());
  const std::uint32_t ppl = grid_.panels_per_layer();
  // Warm the lazy backward tiles outside the timed parallel sweep so the
  // one-time build is not charged to whichever host's sweep triggers it.
  mat_.backward_tile(0);
  util::for_each_index(H, opts_.parallel_hosts, [&](std::size_t h) {
    util::Timer timer;
    const HostId r = grid_.row_of(static_cast<HostId>(h));
    const HostId l = grid_.layer_of(static_cast<HostId>(h));
    const Graph& tile = mat_.backward_tile(static_cast<HostId>(h));
    const VertexId rs = grid_.row_start(r, n_);
    const std::uint32_t first_panel = static_cast<std::uint32_t>(l) * ppl;
    HostScratch& s = scratch_[h];
    s.touched.clear();
    for (std::size_t i = slice[l]; i < slice[l + 1]; ++i) {
      const Entry& e = used_frontier_[i];
      const std::uint32_t pslot = ProcessGrid::panel_of(e.v, n_) - first_panel;
      for (VertexId u : tile.out_neighbors(e.v)) {
        step.host_work[h] += 1.0;
        const DistSigma& tu = table_[static_cast<std::size_t>(u) * k_ + e.sidx];
        if (tu.dist != kInfDist && tu.dist + 1 == e.val.dist) {
          const std::size_t ci = static_cast<std::size_t>(u - rs) * k_ + e.sidx;
          if (!s.mark[ci]) {
            s.mark[ci] = 1;
            s.touched.emplace_back(u, e.sidx);
            for (std::uint32_t p = 0; p < ppl; ++p) s.panels[ci * ppl + p] = 0.0;
          }
          s.panels[ci * ppl + pslot] += tu.sigma * e.val.sigma;
        }
      }
    }
    std::sort(s.touched.begin(), s.touched.end());
    std::vector<DeltaPartial>& dp = delta_partials_[h];
    dp.clear();
    for (const auto& [u, sidx] : s.touched) {
      const std::size_t ci = static_cast<std::size_t>(u - rs) * k_ + sidx;
      s.mark[ci] = 0;
      // The host's aligned panel subtree, reduced bottom-up; contributions
      // are strictly positive, so the partial is too.
      dp.push_back({u, sidx, pairwise_tree(&s.panels[ci * ppl], ppl)});
    }
    step.host_seconds[h] = timer.seconds();
  });

  // ---- 3. replica-group all-reduce of delta partials --------------------
  if (c > 1) {
    auto buffers = make_buffers();
    for (HostId h = 0; h < H; ++h) {
      if (delta_partials_[h].empty()) continue;
      const HostId r = grid_.row_of(h);
      for (HostId l = 0; l < c; ++l) {
        const HostId peer = grid_.host_at(r, l);
        if (peer == h) continue;
        comm::CodecWriter w(buffers[h][peer], opts_.delivery.codec);
        for (const DeltaPartial& d : delta_partials_[h]) {
          w.value_u32(d.v);
          w.value_u32(d.sidx);
          w.f64(d.value);
        }
      }
    }
    for (auto& sd : staged_delta_) sd.clear();
    step.comm += net_.scatter(std::move(buffers),
                              [&](HostId src, HostId dst, util::RecvBuffer& rbuf) {
                                if (dst != grid_.group_leader(grid_.row_of(src))) return;
                                comm::CodecReader r(rbuf, opts_.delivery.codec);
                                while (rbuf.remaining() > 0) {
                                  DeltaPartial d;
                                  d.v = r.value_u32();
                                  d.sidx = r.value_u32();
                                  d.value = r.f64();
                                  staged_delta_[src].push_back(d);
                                }
                              });
  }

  // ---- 4. merge: balanced cross-layer tree per cell ---------------------
  util::for_each_index(pr, opts_.parallel_hosts, [&](std::size_t r) {
    util::Timer timer;
    const std::vector<DeltaPartial>* lists[ProcessGrid::kColumnPanels];
    std::size_t idx[ProcessGrid::kColumnPanels] = {};
    for (HostId l = 0; l < c; ++l) {
      const HostId member = grid_.host_at(static_cast<HostId>(r), l);
      lists[l] = (l == 0 || c == 1) ? &delta_partials_[member] : &staged_delta_[member];
    }
    // c-way sorted merge; absent layers contribute +0.0 (bit-exact-neutral
    // for the positive partials), keeping the tree shape fixed.
    double q[ProcessGrid::kColumnPanels];
    for (;;) {
      std::uint64_t best = ~std::uint64_t{0};
      for (HostId l = 0; l < c; ++l) {
        if (idx[l] < lists[l]->size()) {
          const DeltaPartial& d = (*lists[l])[idx[l]];
          best = std::min(best, cell_key(d.v, d.sidx));
        }
      }
      if (best == ~std::uint64_t{0}) break;
      for (HostId l = 0; l < c; ++l) {
        q[l] = 0.0;
        if (idx[l] < lists[l]->size()) {
          const DeltaPartial& d = (*lists[l])[idx[l]];
          if (cell_key(d.v, d.sidx) == best) {
            q[l] = d.value;
            ++idx[l];
          }
        }
      }
      const VertexId v = static_cast<VertexId>(best >> 32);
      const std::uint32_t sidx = static_cast<std::uint32_t>(best);
      delta_[static_cast<std::size_t>(v) * k_ + sidx] += pairwise_tree(q, c);
    }
    step.host_seconds[grid_.group_leader(static_cast<HostId>(r))] += timer.seconds();
  });
  return step;
}

// DistSigma and Entry carry alignment padding between dist and sigma, so
// they are checkpointed field-by-field — a struct memcpy would leak
// indeterminate padding bytes into the stream and break checkpoint byte
// determinism (digests, dedup, MSan).
namespace {

constexpr std::size_t kDistSigmaWire = sizeof(std::uint32_t) + sizeof(double);
constexpr std::size_t kEntryWire = 2 * sizeof(std::uint32_t) + kDistSigmaWire;

void write_dist_sigma(util::SendBuffer& buf, const DistSigma& t) {
  buf.write<std::uint32_t>(t.dist);
  buf.write<double>(t.sigma);
}

DistSigma read_dist_sigma(util::RecvBuffer& buf) {
  DistSigma t;
  t.dist = buf.read<std::uint32_t>();
  t.sigma = buf.read<double>();
  return t;
}

}  // namespace

void DistBcEngine::save_state(util::SendBuffer& buf) const {
  buf.write<std::uint64_t>(k_);
  buf.write_vector(batch_);
  buf.reserve(buf.size() + table_.size() * kDistSigmaWire + delta_.size() * sizeof(double) +
              frontier_.size() * kEntryWire + 4 * sizeof(std::uint64_t));
  buf.write<std::uint64_t>(table_.size());
  for (const DistSigma& t : table_) write_dist_sigma(buf, t);
  buf.write_vector(delta_);
  buf.write<std::uint32_t>(max_level_);
  buf.write<std::uint64_t>(frontier_.size());
  for (const Entry& e : frontier_) {
    buf.write<std::uint32_t>(e.v);
    buf.write<std::uint32_t>(e.sidx);
    write_dist_sigma(buf, e.val);
  }
  net_.save_state(buf);
}

void DistBcEngine::restore_state(util::RecvBuffer& buf) {
  const std::uint64_t k = buf.read<std::uint64_t>();
  std::vector<VertexId> batch = buf.read_vector<VertexId>();
  if (k != batch.size()) {
    throw std::out_of_range("DistBcEngine: checkpoint batch width " + std::to_string(k) +
                            " does not match batch list size " + std::to_string(batch.size()));
  }
  // Reuse begin_batch for scratch sizing, then overwrite the live state.
  begin_batch(batch);
  const std::size_t cells = static_cast<std::size_t>(n_) * k_;
  const std::uint64_t table_cells = buf.read<std::uint64_t>();
  if (table_cells != cells) {
    throw std::out_of_range("DistBcEngine: checkpoint table has " + std::to_string(table_cells) +
                            " cells, expected " + std::to_string(cells));
  }
  for (DistSigma& t : table_) t = read_dist_sigma(buf);
  delta_ = buf.read_vector<double>();
  if (delta_.size() != cells) {
    throw std::out_of_range("DistBcEngine: checkpoint delta has " + std::to_string(delta_.size()) +
                            " cells, expected " + std::to_string(cells));
  }
  max_level_ = buf.read<std::uint32_t>();
  const std::uint64_t fn = buf.read<std::uint64_t>();
  if (fn > buf.remaining() / kEntryWire) {
    throw std::out_of_range("DistBcEngine: checkpoint frontier length " + std::to_string(fn) +
                            " exceeds " + std::to_string(buf.remaining()) + " remaining bytes");
  }
  frontier_.clear();
  frontier_.reserve(fn);
  for (std::uint64_t i = 0; i < fn; ++i) {
    Entry e;
    e.v = buf.read<std::uint32_t>();
    e.sidx = buf.read<std::uint32_t>();
    e.val = read_dist_sigma(buf);
    frontier_.push_back(e);
  }
  net_.restore_state(buf);
}

}  // namespace mrbc::matrix
