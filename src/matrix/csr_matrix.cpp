// csr_matrix.h is header-only (templates); this file anchors the library
// target and instantiates the common monoid to catch template errors early.
#include "matrix/csr_matrix.h"

#include "matrix/semiring.h"

namespace mrbc::matrix {

// Explicit check that the shipped monoids satisfy the Monoid concept.
static_assert(Monoid<MinPlusSigma>);
static_assert(Monoid<PlusDouble>);

}  // namespace mrbc::matrix
