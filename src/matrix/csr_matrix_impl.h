#pragma once
// Out-of-line template definitions for csr_matrix.h.

namespace mrbc::matrix {

template <typename MonoidT, typename ExtendFn>
std::vector<typename MonoidT::Value> spmv_dense_out(const Graph& g,
                                                    const std::vector<typename MonoidT::Value>& x,
                                                    ExtendFn&& extend) {
  using Value = typename MonoidT::Value;
  std::vector<Value> y(g.num_vertices(), MonoidT::identity());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Value ext = extend(x[v]);
    for (VertexId w : g.out_neighbors(v)) {
      y[w] = MonoidT::combine(y[w], ext);
    }
  }
  return y;
}

}  // namespace mrbc::matrix
