#pragma once
// Pattern sparse matrix (the unweighted adjacency matrix) with semiring
// SpMSpV — the computational kernel of Maximal-Frontier BC. The "matrix" is
// a view over a Graph's CSR arrays; products traverse only the rows/columns
// the sparse operand touches, which is exactly the maximal-frontier
// optimization (only changed entries propagate).

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace mrbc::matrix {

using graph::Graph;
using graph::VertexId;

/// Sparse vector: (index, value) pairs, indices unique but unordered.
template <typename Value>
using SparseVector = std::vector<std::pair<VertexId, Value>>;

/// y = A^T x over a monoid, where A is g's adjacency pattern: for every
/// nonzero x[v], the edge (v, w) contributes Extend(x[v]) to y[w], combined
/// with MonoidT::combine. The result is compacted to the touched indices.
template <typename MonoidT, typename ExtendFn>
SparseVector<typename MonoidT::Value> spmspv_out(
    const Graph& g, const SparseVector<typename MonoidT::Value>& x, ExtendFn&& extend,
    std::vector<typename MonoidT::Value>& scratch, std::vector<std::uint8_t>& touched_scratch) {
  using Value = typename MonoidT::Value;
  scratch.assign(g.num_vertices(), MonoidT::identity());
  touched_scratch.assign(g.num_vertices(), 0);
  std::vector<VertexId> touched;
  for (const auto& [v, value] : x) {
    const Value ext = extend(value);
    for (VertexId w : g.out_neighbors(v)) {
      scratch[w] = MonoidT::combine(scratch[w], ext);
      if (!touched_scratch[w]) {
        touched_scratch[w] = 1;
        touched.push_back(w);
      }
    }
  }
  SparseVector<Value> y;
  y.reserve(touched.size());
  for (VertexId w : touched) y.emplace_back(w, scratch[w]);
  return y;
}

/// Same but traversing in-edges: y = A x (contributions flow against edge
/// direction) — the backward-dependency product.
template <typename MonoidT, typename ExtendFn>
SparseVector<typename MonoidT::Value> spmspv_in(
    const Graph& g, const SparseVector<typename MonoidT::Value>& x, ExtendFn&& extend,
    std::vector<typename MonoidT::Value>& scratch, std::vector<std::uint8_t>& touched_scratch) {
  using Value = typename MonoidT::Value;
  scratch.assign(g.num_vertices(), MonoidT::identity());
  touched_scratch.assign(g.num_vertices(), 0);
  std::vector<VertexId> touched;
  for (const auto& [v, value] : x) {
    const Value ext = extend(value);
    for (VertexId w : g.in_neighbors(v)) {
      scratch[w] = MonoidT::combine(scratch[w], ext);
      if (!touched_scratch[w]) {
        touched_scratch[w] = 1;
        touched.push_back(w);
      }
    }
  }
  SparseVector<Value> y;
  y.reserve(touched.size());
  for (VertexId w : touched) y.emplace_back(w, scratch[w]);
  return y;
}

/// Dense reference product for tests: y[w] = combine over in-edges (v,w) of
/// extend(x[v]).
template <typename MonoidT, typename ExtendFn>
std::vector<typename MonoidT::Value> spmv_dense_out(
    const Graph& g, const std::vector<typename MonoidT::Value>& x, ExtendFn&& extend);

}  // namespace mrbc::matrix

#include "matrix/csr_matrix_impl.h"
