#pragma once
// Replicated MFBC iteration engine: the communication-avoiding distributed
// backend behind baselines/mfbc.cpp. One instance simulates all H hosts of
// a ProcessGrid and drives every byte of inter-host traffic through
// comm::Substrate::scatter, so the delivery layer's framing, codec, fault
// injection, and reliable retransmission apply to MFBC exactly as they do
// to MRBC.
//
// Per forward iteration (the backward levels mirror it):
//   1. sweep    — host (r, l) runs a frontier-sparsity-aware SpMSpV over
//                 its (row r, layer l) tile: only its layer's slice of the
//                 sorted frontier is traversed, partial (dist, sigma)
//                 products accumulate in dense row-block scratch, and
//                 partials that cannot improve the replica's table copy are
//                 filtered before they ever reach a wire.
//   2. all-reduce — the c members of each replica group exchange partials
//                 (c-1 peer messages each) and merge them into the group's
//                 row-block table; at c = 1 this phase moves zero bytes.
//   3. broadcast — changed (vertex, source) cells are re-sharded along the
//                 layer dimension. After the all-reduce every group member
//                 holds the merged changed list, so the send load splits c
//                 ways: member (r, l') ships an equal 1/c chunk of each
//                 target layer's slice to the pr-1 other rows — the 2.5D
//                 trick that cuts the *per-host* broadcast egress (which is
//                 what the BSP network model charges) by c, not just the
//                 aggregate. At c = 1 this is the historical (H-1)-way
//                 frontier allgather, entry for entry and byte for byte.
//
// Replica state is stored once per group (the replicas are bit-identical by
// construction); the c-fold memory cost of real replication is analytical
// (docs/ARCHITECTURE.md). Wherever a message crosses the simulated wire,
// one designated receiver deserializes it and that decoded copy — not the
// sender's local state — feeds the next phase, so corruption/drop/rollback
// schedules exercise the same data path the real system would.
//
// Floating-point determinism across c, H, and thread counts: the forward
// monoid is exact (integer min; sigma sums of integral doubles), so any
// merge grouping yields the same bits. Backward delta sums are not
// associative, so their canonical value is defined structurally: each
// level's contribution to a cell is a balanced pairwise tree over the
// ProcessGrid::kColumnPanels fixed column panels, with absent panels
// contributing +0.0 (bit-exact-neutral for the non-negative partials BC
// produces). Every layer owns a complete aligned subtree of panels, so each
// host reduces its own panels locally and the cross-layer merge evaluates
// only the tree's upper levels — identical bits for every legal c.

#include <cstdint>
#include <vector>

#include "comm/substrate.h"
#include "graph/graph.h"
#include "matrix/dist_matrix.h"
#include "matrix/grid.h"
#include "matrix/semiring.h"
#include "util/serialize.h"

namespace mrbc::matrix {

struct DistBcOptions {
  HostId num_hosts = 4;
  /// Replica-group width c; see ProcessGrid::make for the legality rules.
  HostId replication = 1;
  /// Run per-host sweeps and per-group merges on the shared thread pool
  /// (bit-identical to sequential: sweeps are host-disjoint, merges
  /// group-disjoint, and all cross-host data movement is sequential).
  bool parallel_hosts = false;
  /// Delivery layer for all scatter traffic (framing, faults, codec).
  comm::DeliveryOptions delivery;
};

/// Accounting for one engine step. The driver (baselines/mfbc.cpp) owns
/// NetworkModel charging and RunStats aggregation.
struct DistBcStep {
  comm::SyncStats comm;              ///< measured wire traffic of the step
  std::vector<double> host_seconds;  ///< per-host sweep + merge seconds
  std::vector<double> host_work;     ///< per-host edge relaxations
  std::size_t frontier_entries = 0;  ///< entries produced (fwd) / fired (bwd)
};

class DistBcEngine {
 public:
  DistBcEngine(const Graph& g, const DistBcOptions& opts);

  const ProcessGrid& grid() const { return grid_; }

  /// Resets per-batch state and seeds the frontier with the batch sources.
  void begin_batch(const std::vector<VertexId>& batch);

  bool forward_done() const { return frontier_.empty(); }
  DistBcStep forward_step();
  /// Largest finalized distance seen so far (final after forward_done()).
  std::uint32_t max_level() const { return max_level_; }
  DistBcStep backward_level(std::uint32_t level);

  const DistSigma& table_at(VertexId v, std::size_t sidx) const {
    return table_[static_cast<std::size_t>(v) * k_ + sidx];
  }
  double delta_at(VertexId v, std::size_t sidx) const {
    return delta_[static_cast<std::size_t>(v) * k_ + sidx];
  }

  /// Checkpoint support: batch tables, the live frontier, and the delivery
  /// protocol's sequence numbers roll back as one unit (mirrors the MRBC
  /// engine's crash/rollback contract). Restore assumes an engine built
  /// with the same graph and options.
  void save_state(util::SendBuffer& buf) const;
  void restore_state(util::RecvBuffer& buf);

 private:
  /// One frontier / partial-product entry; `val` carries (dist, sigma) in
  /// the forward phases and (level, m = (1 + delta)/sigma) backward.
  struct Entry {
    VertexId v = 0;
    std::uint32_t sidx = 0;
    DistSigma val;
  };
  struct DeltaPartial {
    VertexId v = 0;
    std::uint32_t sidx = 0;
    double value = 0.0;
  };
  struct HostScratch {
    std::vector<DistSigma> cells;     ///< row-block forward partials
    std::vector<std::uint8_t> mark;   ///< touched-cell dedupe
    std::vector<std::pair<VertexId, std::uint32_t>> touched;
    std::vector<double> panels;       ///< row-block x panels_per_layer delta partials
  };

  std::vector<std::vector<util::SendBuffer>> make_buffers() const;
  void write_entries(util::SendBuffer& buf, const Entry* entries, std::size_t count) const;
  void read_entries(util::RecvBuffer& buf, std::vector<Entry>& out) const;
  /// Contiguous per-layer slice boundaries of a (v, sidx)-sorted span
  /// (vertex_layer is monotone in v). Returns layers+1 offsets.
  std::vector<std::size_t> layer_slices(const Entry* list, std::size_t count) const;
  /// Queues group r's column broadcast: each target layer's slice of the
  /// (v, sidx)-sorted `base` list is split into c equal contiguous chunks,
  /// and member (r, l') ships chunk l' to the pr-1 other rows of the target
  /// layer (all members hold the merged list, so any of them can send any
  /// part of it).
  void queue_column_broadcast(std::vector<std::vector<util::SendBuffer>>& buffers, HostId r,
                              const Entry* base, const std::vector<std::size_t>& slices) const;
  /// Scatter callback staging one decoded copy of every broadcast chunk
  /// into staged_slices_[src * layers + target_layer].
  void stage_broadcast_chunk(HostId src, HostId dst, util::RecvBuffer& rbuf);
  /// Appends the reassembled (r, l) slice — the c staged chunks in member
  /// order — to `out`; `local` is the sender-side fallback when pr == 1
  /// (no wire crossed).
  void append_slice(std::vector<Entry>& out, HostId r, HostId l, const Entry* local_base,
                    const std::vector<std::size_t>& local_slices) const;

  const Graph* g_;
  DistBcOptions opts_;
  ProcessGrid grid_;
  DistMatrix mat_;
  comm::Substrate net_;
  VertexId n_;
  std::size_t k_ = 0;
  std::vector<VertexId> batch_;
  std::vector<DistSigma> table_;  ///< n x k group tables (replicas coincide)
  std::vector<double> delta_;     ///< n x k group dependency tables
  std::vector<Entry> frontier_;   ///< (v, sidx)-sorted live frontier
  std::uint32_t max_level_ = 0;

  // Persistent scratch (allocation reused across rounds and batches).
  std::vector<HostScratch> scratch_;                  // per host
  std::vector<std::vector<Entry>> partials_;          // per host: local partial products
  std::vector<std::vector<Entry>> staged_entries_;    // per src host: decoded at group leader
  std::vector<std::vector<Entry>> group_changed_;     // per group: merged changed cells
  std::vector<std::vector<Entry>> staged_slices_;     // [src * layers + target layer]: chunk
  std::vector<std::vector<DeltaPartial>> delta_partials_;  // per host
  std::vector<std::vector<DeltaPartial>> staged_delta_;    // per src host
  std::vector<Entry> bwd_frontier_;
  std::vector<Entry> used_frontier_;
};

}  // namespace mrbc::matrix
