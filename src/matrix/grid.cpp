#include "matrix/grid.h"

#include <stdexcept>
#include <string>

namespace mrbc::matrix {

namespace {

bool is_power_of_two(HostId v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ProcessGrid ProcessGrid::make(HostId hosts, HostId replication) {
  if (hosts == 0) throw std::invalid_argument("process grid: need at least one host");
  if (replication == 0) {
    throw std::invalid_argument("process grid: replication factor must be >= 1");
  }
  if (hosts % replication != 0) {
    throw std::invalid_argument("process grid: replication factor " +
                                std::to_string(replication) + " does not divide " +
                                std::to_string(hosts) + " hosts");
  }
  if (!is_power_of_two(replication)) {
    throw std::invalid_argument("process grid: replication factor " +
                                std::to_string(replication) +
                                " must be a power of two (column panels split evenly)");
  }
  if (replication > kColumnPanels) {
    throw std::invalid_argument("process grid: replication factor " +
                                std::to_string(replication) + " exceeds the " +
                                std::to_string(kColumnPanels) + " column panels");
  }
  ProcessGrid g;
  g.hosts = hosts;
  g.layers = replication;
  g.rows = hosts / replication;
  return g;
}

VertexId ProcessGrid::block_start(VertexId block, VertexId n, HostId parts) {
  // Mirrors partition::block_owner: the first n % parts blocks get one extra
  // vertex.
  const VertexId base = n / parts;
  const VertexId extra = n % parts;
  return block * base + (block < extra ? block : extra);
}

}  // namespace mrbc::matrix
