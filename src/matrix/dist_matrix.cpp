#include "matrix/dist_matrix.h"

#include "graph/builder.h"

namespace mrbc::matrix {

DistMatrix::DistMatrix(const Graph& g, const ProcessGrid& grid)
    : g_(&g), grid_(grid), n_(g.num_vertices()) {
  std::vector<std::vector<graph::Edge>> per_host(grid_.hosts);
  for (VertexId u = 0; u < n_; ++u) {
    const HostId l = grid_.vertex_layer(u, n_);
    for (VertexId w : g.out_neighbors(u)) {
      per_host[grid_.host_at(grid_.vertex_row(w, n_), l)].push_back({u, w});
    }
  }
  forward_.reserve(grid_.hosts);
  for (HostId h = 0; h < grid_.hosts; ++h) {
    forward_.push_back(graph::build_graph(n_, std::move(per_host[h])));
  }
}

const Graph& DistMatrix::backward_tile(HostId h) {
  std::call_once(backward_once_, [this] { build_backward(); });
  return backward_[h];
}

void DistMatrix::build_backward() {
  std::vector<std::vector<graph::Edge>> per_host(grid_.hosts);
  for (VertexId u = 0; u < n_; ++u) {
    const HostId r = grid_.vertex_row(u, n_);
    for (VertexId w : g_->out_neighbors(u)) {
      per_host[grid_.host_at(r, grid_.vertex_layer(w, n_))].push_back({w, u});
    }
  }
  backward_.reserve(grid_.hosts);
  for (HostId i = 0; i < grid_.hosts; ++i) {
    backward_.push_back(graph::build_graph(n_, std::move(per_host[i])));
  }
}

}  // namespace mrbc::matrix
