#pragma once
// 2D Cartesian process grid with a replication knob, in the spirit of the
// 2.5D / communication-avoiding SpMM layouts MFBC is built on (Solomonik et
// al., SC'17). H hosts are arranged as (H/c) rows x c layers:
//
//               layer 0   layer 1  ...  layer c-1
//   row 0     [ host 0 ] [ host pr] ... [ ... ]        pr = H / c
//   row 1     [ host 1 ] [ ... ]
//   ...
//   row pr-1  [ host pr-1 ]              [ host H-1 ]
//
// host id = layer * pr + row. One *row* of the grid is a replica group: its
// c members all hold the full row-block of the distributed table (the c-fold
// memory cost of replication) but each member only sweeps the columns of its
// own layer, so per-iteration frontier traffic drops from an (H-1)-way
// allgather to a (c-1)-way all-reduce inside the group plus a (pr-1)-way
// broadcast along the layer. c = 1 degenerates to the historical 1D row
// partition byte-for-byte.
//
// Columns are assigned to layers through kColumnPanels fixed vertex panels
// rather than directly, so that the *backward* dependency accumulation can
// be defined as a balanced pairwise reduction tree over the panels: each
// layer owns a complete aligned subtree of panels, which is what keeps
// floating-point delta sums bit-identical across every replication factor
// (see dist_engine.h). This is why c must be a power of two dividing
// kColumnPanels.

#include <cstdint>

#include "partition/partition.h"

namespace mrbc::matrix {

using partition::HostId;
using partition::VertexId;

struct ProcessGrid {
  /// Fixed number of column panels; the leaves of the canonical backward
  /// reduction tree. Every legal replication factor owns 8/c aligned panels.
  static constexpr std::uint32_t kColumnPanels = 8;

  HostId hosts = 1;   ///< H
  HostId rows = 1;    ///< pr = H / c (replica groups)
  HostId layers = 1;  ///< c  (replicas per group)

  /// Validates and builds the grid. Throws std::invalid_argument with a
  /// descriptive message when `replication` does not divide `hosts`, is not
  /// a power of two, or exceeds kColumnPanels.
  static ProcessGrid make(HostId hosts, HostId replication);

  // ---- host <-> (row, layer) ------------------------------------------
  HostId row_of(HostId h) const { return h % rows; }
  HostId layer_of(HostId h) const { return h / rows; }
  HostId host_at(HostId row, HostId layer) const { return layer * rows + row; }
  /// The layer-0 member of `row`'s replica group; the simulator's designated
  /// receiver for intra-group all-reduce traffic.
  HostId group_leader(HostId row) const { return row; }

  // ---- vertex -> grid coordinates -------------------------------------
  /// Row (replica group) owning vertex v's table block.
  HostId vertex_row(VertexId v, VertexId n) const {
    return partition::block_owner(v, n, rows);
  }
  /// Fixed column panel of v (independent of the grid shape).
  static std::uint32_t panel_of(VertexId v, VertexId n) {
    return partition::block_owner(v, n, kColumnPanels);
  }
  std::uint32_t panels_per_layer() const { return kColumnPanels / layers; }
  /// Layer sweeping panel p's columns.
  HostId panel_layer(std::uint32_t panel) const {
    return static_cast<HostId>(panel / panels_per_layer());
  }
  /// Layer sweeping vertex v's column. Monotone non-decreasing in v (panels
  /// are contiguous vertex blocks), so a (v, source)-sorted frontier has
  /// contiguous per-layer slices.
  HostId vertex_layer(VertexId v, VertexId n) const {
    return panel_layer(panel_of(v, n));
  }

  /// First vertex of row-block r (partition::block_owner boundaries).
  static VertexId block_start(VertexId block, VertexId n, HostId parts);
  VertexId row_start(HostId row, VertexId n) const { return block_start(row, n, rows); }
  VertexId row_size(HostId row, VertexId n) const {
    return block_start(row + 1, n, rows) - block_start(row, n, rows);
  }
};

}  // namespace mrbc::matrix
