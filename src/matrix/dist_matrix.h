#pragma once
// Distributed sparse adjacency matrix over a ProcessGrid: every edge (u, w)
// is assigned to exactly one host — the one whose grid row owns destination
// w's table block and whose layer sweeps source u's column panel. Host
// (r, l) therefore holds the (row-block r, column-layer l) tile of A, and a
// frontier sliced by column layer drives write-disjoint per-host SpMSpV
// sweeps whose partial products all land in row-block r.
//
// The tiles are materialized as per-host sub-Graphs (CSR views), exactly
// like the historical 1D MFBC partition — at c = 1 the forward tiles *are*
// the historical per-destination-owner sub-graphs.
//
// dist_spmspv / dist_spmm below run one grid-structured product in-process
// (partial per-tile products, then a combine across layers) for any exact
// monoid; they are the reference primitives the tests pin against the
// scalar spmspv_out / spmv_dense_out kernels. The full replicated BC
// iteration — with staged communication, modeled costs, and the
// floating-point reduction tree — lives in dist_engine.h.

#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "matrix/csr_matrix.h"
#include "matrix/grid.h"

namespace mrbc::matrix {

using graph::Graph;

/// Per-host CSR tiles of a graph's adjacency pattern on a ProcessGrid.
class DistMatrix {
 public:
  /// Builds forward tiles; backward (reversed-edge) tiles are built on
  /// first use (the forward-only tests and forward phase never pay for
  /// them). The lazy build is call_once-guarded, so concurrent first
  /// backward_tile calls are safe — but callers that time per-host work
  /// should still warm it serially so one host doesn't absorb the build.
  DistMatrix(const Graph& g, const ProcessGrid& grid);

  const ProcessGrid& grid() const { return grid_; }
  VertexId num_vertices() const { return n_; }

  /// Tile of host h: edges (u, w) with vertex_row(w) == row_of(h) and
  /// vertex_layer(u) == layer_of(h), as a sub-Graph over global ids.
  const Graph& forward_tile(HostId h) const { return forward_[h]; }

  /// Reversed tile of host h: edge (w, u) present when (u, w) in E,
  /// vertex_row(u) == row_of(h) and vertex_layer(w) == layer_of(h) — the
  /// backward dependency product's operand.
  const Graph& backward_tile(HostId h);

 private:
  void build_backward();

  const Graph* g_;
  ProcessGrid grid_;
  VertexId n_;
  std::vector<Graph> forward_;
  std::vector<Graph> backward_;  // lazy, built under backward_once_
  std::once_flag backward_once_;
};

/// Grid-structured y = A^T x over an exact monoid: each host combines
/// extend(x[v]) into its row-block partials for its column layer, then
/// partials merge across layers (replica-group all-reduce, done in-process
/// here). Only valid for monoids whose combine is exactly associative —
/// MinPlusSigma qualifies (integer min; integral sigma sums), PlusDouble
/// does not (see the panel tree in dist_engine.h for how MFBC's backward
/// phase keeps FP determinism).
template <typename MonoidT, typename ExtendFn>
SparseVector<typename MonoidT::Value> dist_spmspv(
    DistMatrix& A, const SparseVector<typename MonoidT::Value>& x, ExtendFn&& extend) {
  using Value = typename MonoidT::Value;
  const ProcessGrid& grid = A.grid();
  const VertexId n = A.num_vertices();
  std::vector<Value> acc(n, MonoidT::identity());
  std::vector<std::uint8_t> touched_mark(n, 0);
  std::vector<VertexId> touched;
  // Merge per-tile partials in (row, layer) host order; exact combine makes
  // the grouping unobservable in the result.
  for (HostId r = 0; r < grid.rows; ++r) {
    for (HostId l = 0; l < grid.layers; ++l) {
      const Graph& tile = A.forward_tile(grid.host_at(r, l));
      for (const auto& [v, value] : x) {
        if (grid.vertex_layer(v, n) != l) continue;
        const Value ext = extend(value);
        for (VertexId w : tile.out_neighbors(v)) {
          acc[w] = MonoidT::combine(acc[w], ext);
          if (!touched_mark[w]) {
            touched_mark[w] = 1;
            touched.push_back(w);
          }
        }
      }
    }
  }
  SparseVector<Value> y;
  y.reserve(touched.size());
  for (VertexId w : touched) y.emplace_back(w, acc[w]);
  return y;
}

/// Grid-structured dense SpMM over an exact monoid: X is n x k row-major,
/// Y[w][j] = combine over edges (v, w) of extend(X[v][j]). The batched
/// (multi-source) flavor of dist_spmspv; same exactness requirement.
template <typename MonoidT, typename ExtendFn>
std::vector<typename MonoidT::Value> dist_spmm(DistMatrix& A,
                                               const std::vector<typename MonoidT::Value>& x,
                                               std::size_t k, ExtendFn&& extend) {
  using Value = typename MonoidT::Value;
  const ProcessGrid& grid = A.grid();
  const VertexId n = A.num_vertices();
  std::vector<Value> y(static_cast<std::size_t>(n) * k, MonoidT::identity());
  for (HostId r = 0; r < grid.rows; ++r) {
    for (HostId l = 0; l < grid.layers; ++l) {
      const Graph& tile = A.forward_tile(grid.host_at(r, l));
      for (VertexId v = 0; v < n; ++v) {
        if (grid.vertex_layer(v, n) != l) continue;
        for (VertexId w : tile.out_neighbors(v)) {
          for (std::size_t j = 0; j < k; ++j) {
            Value& cell = y[static_cast<std::size_t>(w) * k + j];
            cell = MonoidT::combine(cell, extend(x[static_cast<std::size_t>(v) * k + j]));
          }
        }
      }
    }
  }
  return y;
}

}  // namespace mrbc::matrix
