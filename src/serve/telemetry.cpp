#include "serve/telemetry.h"

#include <chrono>
#include <cstdlib>

namespace mrbc::serve {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double unix_seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Route route_of(const std::string& path) {
  if (path == "/healthz") return Route::kHealthz;
  if (path == "/epoch") return Route::kEpoch;
  if (path == "/bc") return Route::kBc;
  if (path == "/topk") return Route::kTopk;
  if (path == "/pagerank") return Route::kPagerank;
  if (path == "/cc") return Route::kCc;
  if (path == "/kcore") return Route::kKcore;
  if (path == "/stats") return Route::kStats;
  if (path == "/ingest") return Route::kIngest;
  if (path == "/metrics") return Route::kMetrics;
  if (path == "/debug/slow") return Route::kDebugSlow;
  if (path == "/debug/trace") return Route::kDebugTrace;
  return Route::kOther;
}

const char* route_label(Route r) {
  switch (r) {
    case Route::kHealthz: return "/healthz";
    case Route::kEpoch: return "/epoch";
    case Route::kBc: return "/bc";
    case Route::kTopk: return "/topk";
    case Route::kPagerank: return "/pagerank";
    case Route::kCc: return "/cc";
    case Route::kKcore: return "/kcore";
    case Route::kStats: return "/stats";
    case Route::kIngest: return "/ingest";
    case Route::kMetrics: return "/metrics";
    case Route::kDebugSlow: return "/debug/slow";
    case Route::kDebugTrace: return "/debug/trace";
    case Route::kOther: return "other";
    case Route::kCount: break;
  }
  return "?";
}

const char* route_span_name(Route r) {
  switch (r) {
    case Route::kHealthz: return "GET /healthz";
    case Route::kEpoch: return "GET /epoch";
    case Route::kBc: return "GET /bc";
    case Route::kTopk: return "GET /topk";
    case Route::kPagerank: return "GET /pagerank";
    case Route::kCc: return "GET /cc";
    case Route::kKcore: return "GET /kcore";
    case Route::kStats: return "GET /stats";
    case Route::kIngest: return "POST /ingest";
    case Route::kMetrics: return "GET /metrics";
    case Route::kDebugSlow: return "GET /debug/slow";
    case Route::kDebugTrace: return "GET /debug/trace";
    case Route::kOther: return "request";
    case Route::kCount: break;
  }
  return "?";
}

Telemetry::Telemetry(bool enabled, std::uint32_t slow_request_ms, std::size_t slow_log_capacity,
                     obs::WindowedMetrics::ClockFn clock)
    : enabled_(enabled),
      slow_request_ms_(slow_request_ms),
      slow_capacity_(std::max<std::size_t>(slow_log_capacity, 1)),
      windowed_(kWinCounterCount, kWinHistCount, obs::WindowedMetrics::kDefaultRingSeconds,
                clock) {
  windowed_.set_enabled(enabled);
}

void Telemetry::on_request(Route route, int status, double duration_us,
                           const std::string& method, const std::string& target,
                           std::uint64_t request_id) {
  if (!enabled()) return;
  const auto us = static_cast<std::uint64_t>(duration_us < 0 ? 0 : duration_us);
  windowed_.add_counter(kWinRequests);
  if (status == 429) {
    windowed_.add_counter(kWinRejected);
  } else if (status >= 400) {
    windowed_.add_counter(kWinErrors);
  }
  windowed_.record_value(kWinRequestMicros, us);
  route_histogram(route).record(us);
  if (duration_us >= static_cast<double>(slow_request_ms_) * 1000.0) {
    slow_total_.fetch_add(1, std::memory_order_relaxed);
    windowed_.add_counter(kWinSlow);
    SlowRequest entry;
    entry.id = request_id;
    entry.unix_seconds = unix_seconds_now();
    entry.method = method;
    entry.target = target;
    entry.status = status;
    entry.duration_ms = duration_us / 1000.0;
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_.push_back(std::move(entry));
    while (slow_log_.size() > slow_capacity_) slow_log_.pop_front();
  }
}

void Telemetry::on_bytes_in(std::size_t n) {
  if (!enabled()) return;
  bytes_in_.fetch_add(n, std::memory_order_relaxed);
  windowed_.add_counter(kWinBytesIn, n);
}

void Telemetry::on_bytes_out(std::size_t n) {
  if (!enabled()) return;
  bytes_out_.fetch_add(n, std::memory_order_relaxed);
  windowed_.add_counter(kWinBytesOut, n);
}

void Telemetry::on_ingest_admitted(std::size_t ops) {
  if (!enabled()) return;
  windowed_.add_counter(kWinIngestBatches);
  windowed_.add_counter(kWinIngestOps, ops);
}

void Telemetry::on_apply(double apply_us) {
  if (!enabled()) return;
  windowed_.add_counter(kWinApplies);
  windowed_.record_value(kWinApplyMicros,
                         static_cast<std::uint64_t>(apply_us < 0 ? 0 : apply_us));
}

void Telemetry::on_epoch_published() {
  // The publish stamp also feeds epoch_lag_seconds when telemetry is off
  // (/stats still reports it); the windowed counter is gated.
  last_publish_ns_.store(steady_ns(), std::memory_order_release);
  if (enabled()) windowed_.add_counter(kWinEpochs);
}

double Telemetry::epoch_lag_seconds() const {
  const std::int64_t last = last_publish_ns_.load(std::memory_order_acquire);
  if (last == 0) return 0;
  return static_cast<double>(steady_ns() - last) * 1e-9;
}

std::vector<SlowRequest> Telemetry::slow_log() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return {slow_log_.rbegin(), slow_log_.rend()};  // newest first
}

std::uint32_t resolve_slow_request_ms(std::uint32_t option_ms, std::uint32_t fallback_ms) {
  if (option_ms != kSlowRequestMsUnset) return option_ms;
  if (const char* env = std::getenv("MRBC_SLOW_REQUEST_MS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint32_t>(v);
  }
  return fallback_ms;
}

}  // namespace mrbc::serve
