#pragma once
// Live telemetry plane for the BC daemon: per-request instrumentation
// (request ids, per-endpoint cumulative latency histograms, windowed
// rolling counters/histograms), a bounded structured slow-request log,
// and the bookkeeping /metrics needs that the raw ServerCounters cannot
// answer — rolling qps, windowed tail latency, bytes in/out, epoch lag,
// and the ingest coalescing factor over a sliding window.
//
// Everything here is either lock-free (WindowedMetrics, atomics) or
// slow-path-only (the slow-log mutex is taken once per *slow* request and
// per /debug/slow scrape). When the plane is disabled (--no-telemetry)
// every recording site reduces to one relaxed load + branch, inside the
// same <2 ns budget bench/micro_obs enforces for tracer span sites.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace mrbc::serve {

/// Fixed route set; array-indexed so the request hot path never hashes.
enum class Route : std::uint8_t {
  kHealthz = 0,
  kEpoch,
  kBc,
  kTopk,
  kPagerank,
  kCc,
  kKcore,
  kStats,
  kIngest,
  kMetrics,
  kDebugSlow,
  kDebugTrace,
  kOther,
  kCount,
};
inline constexpr std::size_t kNumRoutes = static_cast<std::size_t>(Route::kCount);

Route route_of(const std::string& path);
/// Endpoint label for /metrics series ("/bc", "other", ...).
const char* route_label(Route r);
/// Static-storage span name for the tracer ("GET /bc" etc).
const char* route_span_name(Route r);

/// Windowed counter ids (obs::WindowedMetrics slots).
enum WinCounter : std::size_t {
  kWinRequests = 0,   ///< responses sent (any status)
  kWinErrors,         ///< 4xx/5xx responses other than 429
  kWinRejected,       ///< 429 responses (admission + ingest backpressure)
  kWinBytesIn,        ///< bytes read off request sockets
  kWinBytesOut,       ///< response bytes written
  kWinIngestOps,      ///< edge ops admitted via POST /ingest
  kWinIngestBatches,  ///< batches admitted via POST /ingest
  kWinApplies,        ///< coalesced apply passes (epoch transitions)
  kWinEpochs,         ///< epochs published
  kWinSlow,           ///< requests that landed in the slow log
  kWinCounterCount,
};

/// Windowed histogram ids.
enum WinHist : std::size_t {
  kWinRequestMicros = 0,  ///< per-request wall latency
  kWinApplyMicros,        ///< per-apply (coalesce + recompute + publish) wall time
  kWinHistCount,
};

/// One slow-request record, newest kept. Exposed at GET /debug/slow.
struct SlowRequest {
  std::uint64_t id = 0;          ///< the X-Request-Id value
  double unix_seconds = 0;       ///< wall-clock completion time
  std::string method;
  std::string target;            ///< raw request target, query included
  int status = 0;
  double duration_ms = 0;
};

class Telemetry {
 public:
  /// `slow_request_ms`: requests at least this slow enter the slow log.
  /// `slow_log_capacity`: bound on retained entries (oldest evicted).
  Telemetry(bool enabled, std::uint32_t slow_request_ms, std::size_t slow_log_capacity = 256,
            obs::WindowedMetrics::ClockFn clock = nullptr);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  std::uint32_t slow_request_ms() const { return slow_request_ms_; }

  std::uint64_t next_request_id() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Request completion: windowed counters + latency, per-endpoint
  /// cumulative histogram, slow-log admission. `target` is copied only
  /// when the request is slow.
  void on_request(Route route, int status, double duration_us, const std::string& method,
                  const std::string& target, std::uint64_t request_id);
  void on_bytes_in(std::size_t n);
  void on_bytes_out(std::size_t n);
  void on_ingest_admitted(std::size_t ops);
  void on_apply(double apply_us);
  void on_epoch_published();

  /// Seconds since the last epoch publish (what an operator calls "epoch
  /// lag" under continuous churn); 0 before the first publish.
  double epoch_lag_seconds() const;

  obs::WindowedMetrics& windowed() { return windowed_; }
  const obs::WindowedMetrics& windowed() const { return windowed_; }
  obs::Histogram& route_histogram(Route r) {
    return route_hist_[static_cast<std::size_t>(r)];
  }
  const obs::Histogram& route_histogram(Route r) const {
    return route_hist_[static_cast<std::size_t>(r)];
  }

  std::uint64_t bytes_in() const { return bytes_in_.load(std::memory_order_relaxed); }
  std::uint64_t bytes_out() const { return bytes_out_.load(std::memory_order_relaxed); }
  std::uint64_t slow_requests() const { return slow_total_.load(std::memory_order_relaxed); }

  /// Snapshot of the slow log, newest first.
  std::vector<SlowRequest> slow_log() const;
  std::size_t slow_log_capacity() const { return slow_capacity_; }

  /// Serializes one /debug/trace capture at a time; returns false when a
  /// capture is already running (the endpoint answers 409).
  bool try_begin_trace_capture() { return !trace_busy_.exchange(true, std::memory_order_acq_rel); }
  void end_trace_capture() { trace_busy_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> enabled_;
  std::uint32_t slow_request_ms_;
  std::size_t slow_capacity_;
  obs::WindowedMetrics windowed_;
  obs::Histogram route_hist_[kNumRoutes];  ///< cumulative latency µs per endpoint

  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> slow_total_{0};
  std::atomic<std::int64_t> last_publish_ns_{0};
  std::atomic<bool> trace_busy_{false};

  mutable std::mutex slow_mu_;
  std::deque<SlowRequest> slow_log_;  ///< oldest front, newest back
};

/// Resolves the effective slow-request threshold: an explicit option wins,
/// else the MRBC_SLOW_REQUEST_MS environment override, else `fallback_ms`.
/// (Same layering as MRBC_THREADS in util::ThreadPool.)
std::uint32_t resolve_slow_request_ms(std::uint32_t option_ms, std::uint32_t fallback_ms);

/// Sentinel for "not set on the command line".
inline constexpr std::uint32_t kSlowRequestMsUnset = UINT32_MAX;

}  // namespace mrbc::serve
