#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mrbc::serve {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool HttpRequest::keep_alive() const {
  auto it = headers.find("connection");
  if (it != headers.end()) {
    const std::string v = to_lower(it->second);
    if (v.find("close") != std::string::npos) return false;
    if (v.find("keep-alive") != std::string::npos) return true;
  }
  return version_minor >= 1;  // HTTP/1.1 defaults to persistent
}

std::string HttpRequest::query_param(const std::string& key, const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

void split_target(std::string_view target, std::string& path,
                  std::map<std::string, std::string>& query) {
  query.clear();
  const std::size_t q = target.find('?');
  path = url_decode(target.substr(0, q));
  if (q == std::string_view::npos) return;
  std::string_view qs = target.substr(q + 1);
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    std::string_view pair = qs.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (!pair.empty()) {
      if (eq == std::string_view::npos) {
        query[url_decode(pair)] = "";
      } else {
        query[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
      }
    }
    if (amp == std::string_view::npos) break;
    qs.remove_prefix(amp + 1);
  }
}

void HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

void HttpParser::reset() {
  state_ = State::kHead;
  error_status_ = 0;
  error_reason_.clear();
  head_.clear();
  body_expected_ = 0;
  request_ = HttpRequest{};
}

std::size_t HttpParser::consume(const char* data, std::size_t len) {
  std::size_t used = 0;
  while (used < len && state_ != State::kComplete && state_ != State::kError) {
    if (state_ == State::kHead) {
      // Accumulate until the blank line; head growth is bounded below by
      // the 431 check, so memory stays at max_head_bytes + one read.
      const std::size_t take = len - used;
      const std::size_t before = head_.size();
      head_.append(data + used, take);
      // Find CRLFCRLF, searching only around the new bytes.
      const std::size_t from = before >= 3 ? before - 3 : 0;
      const std::size_t at = head_.find("\r\n\r\n", from);
      if (at == std::string::npos) {
        used += take;
        if (head_.size() > limits_.max_head_bytes) {
          fail(431, "request head too large");
          return used;
        }
        continue;
      }
      // Bytes past the blank line belong to the body (or next request).
      used += at + 4 - before;
      if (at + 4 > limits_.max_head_bytes) {
        fail(431, "request head too large");
        return used;
      }
      head_.resize(at + 4);
      parse_head();
      continue;
    }
    // kBody
    const std::size_t want = body_expected_ - request_.body.size();
    const std::size_t take = std::min(want, len - used);
    request_.body.append(data + used, take);
    used += take;
    if (request_.body.size() == body_expected_) state_ = State::kComplete;
  }
  return used;
}

void HttpParser::parse_head() {
  std::string_view rest(head_);
  rest.remove_suffix(2);  // trailing CRLF of the blank line
  bool first = true;
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 2);
    if (first) {
      if (!parse_request_line(line)) return;
      first = false;
    } else if (!line.empty()) {
      if (!parse_header_line(line)) return;
    }
  }
  if (first) {
    fail(400, "empty request");
    return;
  }
  on_headers_done();
}

bool HttpParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    fail(505, "unsupported HTTP version");
    return false;
  }
  if (request_.method.empty() ||
      !std::all_of(request_.method.begin(), request_.method.end(),
                   [](unsigned char c) { return std::isupper(c) != 0; })) {
    fail(400, "malformed method");
    return false;
  }
  if (request_.target.empty() || request_.target[0] != '/') {
    fail(400, "malformed request target");
    return false;
  }
  split_target(request_.target, request_.path, request_.query);
  return true;
}

bool HttpParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (name.back() == ' ' || name.back() == '\t') {
    fail(400, "whitespace before header colon");
    return false;
  }
  std::string key = to_lower(name);
  std::string value(trim(line.substr(colon + 1)));
  auto it = request_.headers.find(key);
  if (it != request_.headers.end()) {
    if (key == "content-length" && it->second != value) {
      fail(400, "conflicting Content-Length headers");
      return false;
    }
    return true;  // keep the first occurrence
  }
  request_.headers.emplace(std::move(key), std::move(value));
  return true;
}

void HttpParser::on_headers_done() {
  if (request_.headers.count("transfer-encoding") != 0) {
    fail(501, "Transfer-Encoding not supported");
    return;
  }
  body_expected_ = 0;
  auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() || !std::all_of(v.begin(), v.end(),
                                  [](unsigned char c) { return std::isdigit(c) != 0; })) {
      fail(400, "malformed Content-Length");
      return;
    }
    errno = 0;
    const unsigned long long parsed = std::strtoull(v.c_str(), nullptr, 10);
    if (errno != 0 || parsed > limits_.max_body_bytes) {
      fail(413, "request body too large");
      return;
    }
    body_expected_ = static_cast<std::size_t>(parsed);
  }
  head_.clear();
  if (body_expected_ == 0) {
    state_ = State::kComplete;
  } else {
    request_.body.reserve(body_expected_);
    state_ = State::kBody;
  }
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>& extra) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : extra) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

// ---- HttpClient -------------------------------------------------------------

HttpClient::HttpClient(std::uint16_t port, bool keep_alive)
    : port_(port), keep_alive_(keep_alive) {}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

int HttpClient::connect_fd() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("connect() to 127.0.0.1:" + std::to_string(port_) +
                             " failed: " + std::strerror(errno));
  }
  return fd;
}

HttpClient::Response HttpClient::round_trip(const std::string& request_text) {
  if (fd_ < 0) fd_ = connect_fd();
  std::size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n = ::send(fd_, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) {
      // A keep-alive peer may have timed the connection out; retry once on
      // a fresh connection.
      ::close(fd_);
      fd_ = connect_fd();
      sent = 0;
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  std::size_t content_length = 0;
  while (true) {
    if (header_end == std::string::npos) {
      header_end = raw.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string head = to_lower(raw.substr(0, header_end));
        const std::size_t cl = head.find("content-length:");
        if (cl != std::string::npos) {
          content_length = std::strtoull(head.c_str() + cl + 15, nullptr, 10);
        }
      }
    }
    if (header_end != std::string::npos && raw.size() >= header_end + 4 + content_length) break;
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) throw std::runtime_error("connection closed mid-response");
    raw.append(buf, static_cast<std::size_t>(n));
  }

  Response resp;
  std::string_view head(raw.data(), header_end);
  const std::size_t eol = head.find("\r\n");
  std::string_view status_line = head.substr(0, eol);
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    throw std::runtime_error("malformed status line");
  }
  resp.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());
  std::string_view rest = eol == std::string_view::npos ? std::string_view{} : head.substr(eol + 2);
  while (!rest.empty()) {
    const std::size_t le = rest.find("\r\n");
    std::string_view line = rest.substr(0, le);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      resp.headers[to_lower(line.substr(0, colon))] = std::string(trim(line.substr(colon + 1)));
    }
    if (le == std::string_view::npos) break;
    rest.remove_prefix(le + 2);
  }
  resp.body = raw.substr(header_end + 4, content_length);

  auto conn = resp.headers.find("connection");
  const bool server_keeps = conn == resp.headers.end() || to_lower(conn->second) != "close";
  if (!keep_alive_ || !server_keeps) {
    ::close(fd_);
    fd_ = -1;
  }
  return resp;
}

HttpClient::Response HttpClient::get(const std::string& target) {
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: " +
                    (keep_alive_ ? "keep-alive" : "close") + std::string("\r\n\r\n");
  return round_trip(req);
}

HttpClient::Response HttpClient::post(const std::string& target, const std::string& body,
                                      const std::string& content_type) {
  std::string req = "POST " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: " +
                    content_type + "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: " + (keep_alive_ ? "keep-alive" : "close") + "\r\n\r\n" + body;
  return round_trip(req);
}

}  // namespace mrbc::serve
