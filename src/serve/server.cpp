#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "analytics/connected_components.h"
#include "analytics/kcore.h"
#include "analytics/pagerank.h"
#include "analytics/topk.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/log.h"

namespace mrbc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Status code of an already-serialized response ("HTTP/1.1 200 ...").
int response_status(const std::string& resp) {
  if (resp.size() < 12) return 0;
  int status = 0;
  for (std::size_t i = 9; i < 12; ++i) {
    const char c = resp[i];
    if (c < '0' || c > '9') return 0;
    status = status * 10 + (c - '0');
  }
  return status;
}

/// Splices a header line into a serialized response, after the status line.
void insert_header(std::string& resp, const char* name, const std::string& value) {
  const std::size_t eol = resp.find("\r\n");
  if (eol == std::string::npos) return;
  std::string line = name;
  line += ": ";
  line += value;
  line += "\r\n";
  resp.insert(eol + 2, line);
}

/// Resident set size from /proc/self/statm; 0 when unreadable.
double resident_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long rss_pages = 0;
  const int got = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<double>(rss_pages) * static_cast<double>(::sysconf(_SC_PAGESIZE));
}

/// Comma-separated vertex-id list ("1,5,9"); false on any malformed entry.
bool parse_vertex_list(const std::string& s, std::vector<std::uint64_t>& out) {
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::uint64_t v = 0;
    if (!parse_u64(item, v)) return false;
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

// ---- Construction / engine bring-up ----------------------------------------

Server::Server(graph::Graph base, ServerOptions options)
    : opts_(std::move(options)),
      telemetry_(opts_.telemetry, resolve_slow_request_ms(opts_.slow_request_ms, 250),
                 opts_.slow_log_capacity) {
  const Clock::time_point t0 = Clock::now();
  const std::string ckpt =
      opts_.checkpoint_dir.empty() ? std::string{} : checkpoint_path(opts_.checkpoint_dir);
  if (!opts_.checkpoint_dir.empty()) std::filesystem::create_directories(opts_.checkpoint_dir);
  if (!ckpt.empty() && !opts_.fresh_start && std::filesystem::exists(ckpt)) {
    engine_ = std::make_unique<stream::IncrementalBc>(stream::IncrementalBc::load(ckpt, opts_.bc));
    MRBC_LOG_INFO << "serve: restored engine from " << ckpt << " (epoch " << engine_->epoch()
                  << ")";
  } else {
    engine_ = std::make_unique<stream::IncrementalBc>(std::move(base), opts_.bc);
  }
  publish_epoch(/*coalesced=*/0, seconds_since(t0));
}

Server::~Server() {
  stop();
}

std::uint64_t Server::engine_epoch() const {
  const EpochStore::Ptr snap = store_.current();
  return snap ? snap->epoch : 0;
}

double Server::ingest_oldest_age_seconds() const {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (ingest_queue_.empty()) return 0;
  return seconds_since(ingest_queue_.front().enqueued);
}

void Server::publish_epoch(std::size_t coalesced, double recompute_seconds) {
  obs::Span span(obs::Category::kServe, "serve/publish");
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = engine_->epoch();
  snap->num_vertices = engine_->delta().num_vertices();
  snap->num_edges = engine_->delta().num_edges();
  snap->bc = engine_->scaled_scores();
  snap->coalesced_batches = coalesced;
  if (opts_.run_analytics && snap->num_vertices > 0) {
    const graph::Graph& g = engine_->delta().base();
    const auto hosts = std::max<partition::HostId>(opts_.bc.mrbc.num_hosts, 1);
    analytics::PagerankOptions pr;
    pr.max_iterations = opts_.pagerank_iterations;
    snap->pagerank = analytics::pagerank(g, hosts, pr).rank;
    snap->component = analytics::connected_components(g, hosts).component;
    // Min-label CC: a component's label is its smallest member, so the
    // component count is the number of self-labeled vertices.
    for (graph::VertexId v = 0; v < snap->num_vertices; ++v) {
      if (snap->component[v] == v) ++snap->num_components;
    }
    snap->kcore_k = opts_.kcore_k;
    const auto kc = analytics::kcore(g, opts_.kcore_k, hosts);
    snap->in_kcore.resize(snap->num_vertices);
    for (graph::VertexId v = 0; v < snap->num_vertices; ++v) {
      snap->in_kcore[v] = kc.in_core[v] ? 1 : 0;
    }
  }
  snap->recompute_seconds = recompute_seconds;
  store_.publish(std::move(snap));
  counters_.epochs_published.fetch_add(1, std::memory_order_relaxed);
  telemetry_.on_epoch_published();
}

void Server::maybe_checkpoint(bool force) {
  if (opts_.checkpoint_dir.empty()) return;
  if (!force &&
      (opts_.checkpoint_every == 0 || batches_since_checkpoint_ < opts_.checkpoint_every)) {
    return;
  }
  engine_->save(checkpoint_path(opts_.checkpoint_dir));
  batches_since_checkpoint_ = 0;
  counters_.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
}

// ---- Lifecycle --------------------------------------------------------------

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(opts_.port) +
                             ": " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  // /stats exports histograms, so the metrics layer comes up with the
  // daemon (recording sites everywhere else in the tree light up too).
  obs::Metrics::global().enable();
  start_time_ = Clock::now();

  draining_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_stop_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_stop_ = false;
  }
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { accept_loop(); });
  ingest_thread_ = std::thread([this] { ingest_loop(); });
  const std::size_t threads = std::max<std::size_t>(opts_.request_threads, 1);
  request_pool_ = std::make_unique<util::ThreadPool>(threads);
  dispatcher_thread_ = std::thread([this, threads] {
    // One long-running pool job: every participant is a request worker
    // draining the shared connection queue until drain.
    request_pool_->parallel_for_chunks(0, threads, 1,
                                       [this](std::size_t, std::size_t, std::size_t) {
                                         request_worker();
                                       });
  });
  MRBC_LOG_INFO << "serve: listening on 127.0.0.1:" << port_ << " (" << threads
                << " request threads)";
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting (the accept loop notices draining_ within its poll
  //    timeout and exits; the closed fd makes pending accepts fail fast).
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Let the request workers finish everything already admitted, then
  //    release them.
  while (true) {
    std::unique_lock<std::mutex> lock(conn_mu_);
    if (conn_queue_.empty()) break;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_stop_ = true;
    // Kick idle keep-alive connections out of recv() — their workers see
    // EOF, close, and exit without waiting for the socket timeout. A
    // response mid-send still goes out (only the read side is shut).
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  conn_cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  request_pool_.reset();

  // 3. Drain the ingest queue: every acknowledged batch is applied and
  //    published before the process exits.
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_stop_ = true;
  }
  ingest_cv_.notify_all();
  if (ingest_thread_.joinable()) ingest_thread_.join();

  // 4. Durable goodbye at a guaranteed batch boundary.
  maybe_checkpoint(/*force=*/true);
  MRBC_LOG_INFO << "serve: drained (" << counters_.requests_served.load(std::memory_order_relaxed)
                << " requests, " << counters_.epochs_published.load(std::memory_order_relaxed)
                << " epochs)";
}

// ---- Accept / admission control ---------------------------------------------

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conn_queue_.size() < opts_.max_pending_requests) {
        conn_queue_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      conn_cv_.notify_one();
    } else {
      // Admission control: reject at the door instead of queueing without
      // bound. The 429 is written inline (cheap — the response is tiny).
      counters_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      telemetry_.windowed().add_counter(kWinRejected);
      send_all(fd, http_response(429, "application/json",
                                 "{\"error\":\"too many pending requests\"}", false,
                                 {{"Retry-After", "1"}}));
      ::close(fd);
    }
  }
}

// ---- Request loop -----------------------------------------------------------

void Server::request_worker() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] { return !conn_queue_.empty() || conn_stop_; });
      if (conn_queue_.empty()) return;  // conn_stop_
      fd = conn_queue_.front();
      conn_queue_.pop_front();
      active_fds_.push_back(fd);  // stop() can shut idle keep-alives down
    }
    try {
      handle_connection(fd);
    } catch (const std::exception& e) {
      MRBC_LOG_WARN << "serve: connection handler error: " << e.what();
      ::close(fd);
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.erase(std::find(active_fds_.begin(), active_fds_.end(), fd));
    }
  }
}

void Server::handle_connection(int fd) {
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  HttpParser parser(opts_.http_limits);
  std::string carry;  ///< bytes past the current message (pipelining)
  char buf[4096];
  std::size_t served_here = 0;
  while (true) {
    if (!carry.empty() && !parser.complete() && !parser.error()) {
      const std::size_t used = parser.consume(carry);
      carry.erase(0, used);
    }
    if (!parser.complete() && !parser.error()) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;  // peer closed, or idle past the socket timeout
      telemetry_.on_bytes_in(static_cast<std::size_t>(n));
      const std::size_t used = parser.consume(buf, static_cast<std::size_t>(n));
      carry.append(buf + used, static_cast<std::size_t>(n) - used);
      continue;
    }
    if (parser.error()) {
      counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, error_response(parser.error_status(), parser.error_reason(), false));
      break;
    }

    HttpRequest req = parser.take_request();
    ++served_here;
    const bool keep = req.keep_alive() && served_here < opts_.max_keepalive_requests &&
                      !draining_.load(std::memory_order_acquire);
    const Route route = route_of(req.path);
    const bool telemetry = telemetry_.enabled();
    const std::uint64_t request_id = telemetry ? telemetry_.next_request_id() : 0;
    const Clock::time_point t0 = Clock::now();
    // The simulated slow handler counts as handler time: slow-log and
    // latency-telemetry tests rely on it crossing the threshold.
    if (opts_.debug_handler_delay_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.debug_handler_delay_ms));
    }
    std::string resp;
    {
      obs::Span span(obs::Category::kServe, route_span_name(route));
      try {
        resp = dispatch(req, keep);
      } catch (const util::JsonError& e) {
        counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
        resp = error_response(400, e.what(), keep);
      } catch (const std::exception& e) {
        resp = error_response(500, e.what(), false);
      }
    }
    const double request_us = seconds_since(t0) * 1e6;
    if (obs::metrics_enabled()) {
      obs::Metrics::global()
          .named("serve/request_us")
          .record(static_cast<std::uint64_t>(request_us));
    }
    if (telemetry) {
      insert_header(resp, "X-Request-Id", std::to_string(request_id));
      // Server-side handler time, echoed so clients can separate server
      // cost from transit — and so bench/serve_load can reconcile the
      // windowed latency histogram against exact per-request truth.
      insert_header(resp, "X-Request-Us",
                    std::to_string(static_cast<std::uint64_t>(request_us < 0 ? 0 : request_us)));
      telemetry_.on_request(route, response_status(resp), request_us, req.method, req.target,
                            request_id);
      telemetry_.on_bytes_out(resp.size());
    }
    if (!send_all(fd, resp)) break;
    counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
    if (!keep) break;
    parser.reset();
  }
  ::close(fd);
}

// ---- Routing ----------------------------------------------------------------

std::string Server::error_response(int status, const std::string& message, bool keep_alive) {
  util::JsonWriter w;
  w.begin_object().key("error").value(message).key("status").value(std::int64_t{status});
  w.end_object();
  return http_response(status, "application/json", w.str(), keep_alive);
}

std::string Server::dispatch(const HttpRequest& req, bool keep_alive) {
  if (req.path == "/ingest") {
    if (req.method != "POST") return error_response(405, "POST /ingest", keep_alive);
    return handle_ingest(req, keep_alive);
  }
  if (req.method != "GET" && req.method != "HEAD") {
    return error_response(405, "method not allowed", keep_alive);
  }
  const EpochStore::Ptr snap = store_.current();  // pinned for this request

  if (req.path == "/healthz") {
    util::JsonWriter w;
    w.begin_object().key("status").value("ok").key("epoch").value(snap->epoch).end_object();
    return http_response(200, "application/json", w.str(), keep_alive);
  }
  if (req.path == "/epoch") {
    util::JsonWriter w;
    w.begin_object()
        .key("epoch").value(snap->epoch)
        .key("publishes").value(snap->publish_seq)
        .key("vertices").value(std::uint64_t{snap->num_vertices})
        .key("edges").value(std::uint64_t{snap->num_edges})
        .end_object();
    return http_response(200, "application/json", w.str(), keep_alive,
                         {{"X-Epoch", std::to_string(snap->epoch)}});
  }
  if (req.path == "/bc") return handle_bc(req, *snap, keep_alive);
  if (req.path == "/topk") return handle_topk(req, *snap, keep_alive);
  if (req.path == "/pagerank" || req.path == "/cc" || req.path == "/kcore") {
    return handle_vertex_metric(req, *snap, keep_alive, req.path.substr(1));
  }
  if (req.path == "/stats") return handle_stats(*snap, keep_alive);
  if (req.path == "/metrics") {
    if (!telemetry_.enabled()) return error_response(404, "telemetry disabled", keep_alive);
    return handle_metrics(*snap, keep_alive);
  }
  if (req.path == "/debug/slow") {
    if (!telemetry_.enabled()) return error_response(404, "telemetry disabled", keep_alive);
    return handle_debug_slow(keep_alive);
  }
  if (req.path == "/debug/trace") return handle_debug_trace(req, keep_alive);
  return error_response(404, "no such endpoint: " + req.path, keep_alive);
}

std::string Server::handle_bc(const HttpRequest& req, const EpochSnapshot& snap,
                              bool keep_alive) {
  util::JsonWriter w;
  const std::vector<std::pair<std::string, std::string>> epoch_hdr = {
      {"X-Epoch", std::to_string(snap.epoch)}};
  if (req.query_param("all") == "1") {
    w.begin_object().key("epoch").value(snap.epoch).key("n").value(
        std::uint64_t{snap.num_vertices});
    w.key("bc").begin_array();
    for (double b : snap.bc) w.value(b);
    w.end_array().end_object();
    return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
  }
  const std::string multi = req.query_param("vertices");
  if (!multi.empty()) {
    std::vector<std::uint64_t> ids;
    if (!parse_vertex_list(multi, ids)) {
      return error_response(400, "malformed vertices list", keep_alive);
    }
    for (std::uint64_t v : ids) {
      if (v >= snap.bc.size()) {
        return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
      }
    }
    w.begin_object().key("epoch").value(snap.epoch).key("vertices").begin_array();
    for (std::uint64_t v : ids) w.value(v);
    w.end_array().key("bc").begin_array();
    for (std::uint64_t v : ids) w.value(snap.bc[v]);
    w.end_array().end_object();
    return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
  }
  std::uint64_t v = 0;
  if (!parse_u64(req.query_param("vertex"), v)) {
    return error_response(400, "vertex=<id>, vertices=<id,id,...> or all=1 required", keep_alive);
  }
  if (v >= snap.bc.size()) {
    return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
  }
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("vertex").value(v)
      .key("bc").value(snap.bc[v])
      .end_object();
  return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
}

std::string Server::handle_topk(const HttpRequest& req, const EpochSnapshot& snap,
                                bool keep_alive) {
  std::uint64_t k = 10;
  const std::string k_param = req.query_param("k");
  if (!k_param.empty() && !parse_u64(k_param, k)) {
    return error_response(400, "malformed k", keep_alive);
  }
  const std::string metric = req.query_param("metric", "bc");
  const std::vector<double>* scores = nullptr;
  if (metric == "bc") {
    scores = &snap.bc;
  } else if (metric == "pagerank") {
    if (snap.pagerank.empty()) return error_response(404, "analytics disabled", keep_alive);
    scores = &snap.pagerank;
  } else {
    return error_response(400, "metric must be bc or pagerank", keep_alive);
  }
  const auto ranked = analytics::top_k(*scores, static_cast<std::size_t>(k));
  util::JsonWriter w;
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("metric").value(metric)
      .key("k").value(std::uint64_t{ranked.size()})
      .key("results").begin_array();
  for (const auto& r : ranked) {
    w.begin_object().key("vertex").value(std::uint64_t{r.vertex}).key("score").value(r.score);
    w.end_object();
  }
  w.end_array().end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

std::string Server::handle_vertex_metric(const HttpRequest& req, const EpochSnapshot& snap,
                                         bool keep_alive, const std::string& metric) {
  std::uint64_t v = 0;
  if (!parse_u64(req.query_param("vertex"), v)) {
    return error_response(400, "vertex=<id> required", keep_alive);
  }
  if (v >= snap.num_vertices) {
    return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
  }
  const bool have = metric == "pagerank" ? !snap.pagerank.empty()
                    : metric == "cc"     ? !snap.component.empty()
                                         : !snap.in_kcore.empty();
  if (!have) return error_response(404, "analytics disabled", keep_alive);
  util::JsonWriter w;
  w.begin_object().key("epoch").value(snap.epoch).key("vertex").value(v);
  if (metric == "pagerank") {
    w.key("pagerank").value(snap.pagerank[v]);
  } else if (metric == "cc") {
    w.key("component").value(std::uint64_t{snap.component[v]});
    w.key("num_components").value(std::uint64_t{snap.num_components});
  } else {
    w.key("k").value(std::uint64_t{snap.kcore_k});
    w.key("in_kcore").value(snap.in_kcore[v] != 0);
  }
  w.end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

std::string Server::handle_stats(const EpochSnapshot& snap, bool keep_alive) {
  std::size_t pending_requests = 0;
  std::size_t pending_ingest = 0;
  double ingest_oldest_age = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    pending_requests = conn_queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    pending_ingest = ingest_queue_.size();
    if (!ingest_queue_.empty()) {
      ingest_oldest_age = seconds_since(ingest_queue_.front().enqueued);
    }
  }
  const auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  util::JsonWriter w;
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("publishes").value(snap.publish_seq)
      .key("vertices").value(std::uint64_t{snap.num_vertices})
      .key("edges").value(std::uint64_t{snap.num_edges})
      .key("recompute_seconds").value(snap.recompute_seconds)
      .key("coalesced_batches").value(std::uint64_t{snap.coalesced_batches});
  w.key("counters").begin_object()
      .key("connections_accepted").value(load(counters_.connections_accepted))
      .key("requests_served").value(load(counters_.requests_served))
      .key("rejected_requests").value(load(counters_.rejected_requests))
      .key("rejected_ingest").value(load(counters_.rejected_ingest))
      .key("bad_requests").value(load(counters_.bad_requests))
      .key("batches_ingested").value(load(counters_.batches_ingested))
      .key("ops_ingested").value(load(counters_.ops_ingested))
      .key("batches_applied").value(load(counters_.batches_applied))
      .key("epochs_published").value(load(counters_.epochs_published))
      .key("checkpoints_written").value(load(counters_.checkpoints_written))
      .end_object();
  w.key("queues").begin_object()
      .key("pending_requests").value(std::uint64_t{pending_requests})
      .key("pending_ingest").value(std::uint64_t{pending_ingest})
      .key("ingest_oldest_age_seconds").value(ingest_oldest_age)
      .key("max_pending_requests").value(std::uint64_t{opts_.max_pending_requests})
      .key("max_pending_ingest").value(std::uint64_t{opts_.max_pending_ingest})
      .end_object();
  w.key("telemetry").begin_object()
      .key("enabled").value(telemetry_.enabled())
      .key("slow_request_ms").value(std::uint64_t{telemetry_.slow_request_ms()})
      .key("slow_requests").value(telemetry_.slow_requests())
      .key("bytes_in").value(telemetry_.bytes_in())
      .key("bytes_out").value(telemetry_.bytes_out())
      .key("epoch_lag_seconds").value(telemetry_.epoch_lag_seconds())
      .end_object();
  w.key("metrics").raw(obs::Metrics::global().json());
  w.end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

// ---- Telemetry exposition ---------------------------------------------------

std::string Server::handle_metrics(const EpochSnapshot& snap, bool keep_alive) {
  const auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  const obs::WindowedMetrics& win = telemetry_.windowed();
  // One consistent read instant for every windowed series in the scrape.
  const std::int64_t now_s = win.now_seconds();
  static constexpr struct { const char* label; std::size_t seconds; } kWindows[] = {
      {"10s", 10}, {"1m", 60}, {"5m", 300}};
  static constexpr struct { const char* label; double pct; } kQuantiles[] = {
      {"0.5", 50.0}, {"0.9", 90.0}, {"0.99", 99.0}};

  std::size_t pending_requests = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    pending_requests = conn_queue_.size();
  }
  std::size_t pending_ingest = 0;
  double ingest_oldest_age = 0;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    pending_ingest = ingest_queue_.size();
    if (!ingest_queue_.empty()) {
      ingest_oldest_age = seconds_since(ingest_queue_.front().enqueued);
    }
  }

  obs::PromWriter w;
  // -- process / daemon identity ---------------------------------------------
  w.type("mrbc_serve_uptime_seconds", "gauge", "Seconds since the daemon started serving.");
  w.sample("mrbc_serve_uptime_seconds", {}, seconds_since(start_time_));
  w.type("mrbc_serve_resident_memory_bytes", "gauge", "Resident set size (statm).");
  w.sample("mrbc_serve_resident_memory_bytes", {}, resident_bytes());
  w.type("mrbc_serve_clock_seconds", "gauge",
         "Current second on the windowed-metrics clock; external reconciliation "
         "buckets its own samples on this timeline.");
  w.sample("mrbc_serve_clock_seconds", {}, static_cast<double>(now_s));

  // -- epochs -----------------------------------------------------------------
  w.type("mrbc_serve_epoch", "gauge", "Epoch of the currently published snapshot.");
  w.sample("mrbc_serve_epoch", {}, std::uint64_t{snap.epoch});
  w.type("mrbc_serve_epoch_lag_seconds", "gauge", "Seconds since the last epoch publish.");
  w.sample("mrbc_serve_epoch_lag_seconds", {}, telemetry_.epoch_lag_seconds());
  w.type("mrbc_serve_epochs_published_total", "counter", "Epochs published since start.");
  w.sample("mrbc_serve_epochs_published_total", {}, load(counters_.epochs_published));

  // -- requests: cumulative ---------------------------------------------------
  w.type("mrbc_serve_requests_total", "counter", "Requests answered (any status).");
  w.sample("mrbc_serve_requests_total", {}, load(counters_.requests_served));
  w.type("mrbc_serve_rejected_total", "counter", "429 responses by rejection point.");
  w.sample("mrbc_serve_rejected_total", {{"reason", "admission"}},
           load(counters_.rejected_requests));
  w.sample("mrbc_serve_rejected_total", {{"reason", "ingest_backpressure"}},
           load(counters_.rejected_ingest));
  w.type("mrbc_serve_bad_requests_total", "counter", "4xx/5xx parse or handler failures.");
  w.sample("mrbc_serve_bad_requests_total", {}, load(counters_.bad_requests));
  w.type("mrbc_serve_slow_requests_total", "counter",
         "Requests that crossed the slow-request threshold.");
  w.sample("mrbc_serve_slow_requests_total", {}, telemetry_.slow_requests());
  w.type("mrbc_serve_bytes_total", "counter", "Socket bytes by direction.");
  w.sample("mrbc_serve_bytes_total", {{"direction", "in"}}, telemetry_.bytes_in());
  w.sample("mrbc_serve_bytes_total", {{"direction", "out"}}, telemetry_.bytes_out());

  // -- requests: per-endpoint cumulative latency histograms -------------------
  w.type("mrbc_serve_request_duration_us", "histogram",
         "Request wall latency by endpoint, microseconds (cumulative log2 buckets).");
  for (std::size_t r = 0; r < kNumRoutes; ++r) {
    const auto route = static_cast<Route>(r);
    w.histogram("mrbc_serve_request_duration_us", {{"endpoint", route_label(route)}},
                telemetry_.route_histogram(route));
  }

  // -- requests: windowed rates and tails -------------------------------------
  w.type("mrbc_serve_window_qps", "gauge", "Requests per second over the trailing window.");
  w.type("mrbc_serve_window_errors_per_second", "gauge",
         "Non-429 4xx/5xx responses per second over the trailing window.");
  w.type("mrbc_serve_window_rejected_per_second", "gauge",
         "429 responses per second over the trailing window.");
  w.type("mrbc_serve_window_bytes_per_second", "gauge",
         "Socket bytes per second by direction over the trailing window.");
  w.type("mrbc_serve_window_request_latency_us", "gauge",
         "Windowed request-latency quantiles, microseconds.");
  w.type("mrbc_serve_window_epochs_per_second", "gauge",
         "Epoch publishes per second over the trailing window.");
  for (const auto& win_def : kWindows) {
    const double secs = static_cast<double>(win_def.seconds);
    const obs::PromLabels wl = {{"window", win_def.label}};
    w.sample("mrbc_serve_window_qps", wl,
             static_cast<double>(win.counter_sum(kWinRequests, win_def.seconds, now_s)) / secs);
    w.sample("mrbc_serve_window_errors_per_second", wl,
             static_cast<double>(win.counter_sum(kWinErrors, win_def.seconds, now_s)) / secs);
    w.sample("mrbc_serve_window_rejected_per_second", wl,
             static_cast<double>(win.counter_sum(kWinRejected, win_def.seconds, now_s)) / secs);
    w.sample("mrbc_serve_window_bytes_per_second",
             {{"direction", "in"}, {"window", win_def.label}},
             static_cast<double>(win.counter_sum(kWinBytesIn, win_def.seconds, now_s)) / secs);
    w.sample("mrbc_serve_window_bytes_per_second",
             {{"direction", "out"}, {"window", win_def.label}},
             static_cast<double>(win.counter_sum(kWinBytesOut, win_def.seconds, now_s)) / secs);
    const obs::WindowedMetrics::HistWindow lat =
        win.hist_window(kWinRequestMicros, win_def.seconds, now_s);
    for (const auto& q : kQuantiles) {
      w.sample("mrbc_serve_window_request_latency_us",
               {{"quantile", q.label}, {"window", win_def.label}}, lat.percentile(q.pct));
    }
    w.sample("mrbc_serve_window_epochs_per_second", wl,
             static_cast<double>(win.counter_sum(kWinEpochs, win_def.seconds, now_s)) / secs);
  }

  // -- ingest pipeline --------------------------------------------------------
  w.type("mrbc_serve_ingest_queue_depth", "gauge", "Batches queued, not yet applied.");
  w.sample("mrbc_serve_ingest_queue_depth", {}, std::uint64_t{pending_ingest});
  w.type("mrbc_serve_ingest_oldest_batch_age_seconds", "gauge",
         "Age of the oldest queued batch; 0 when the queue is empty.");
  w.sample("mrbc_serve_ingest_oldest_batch_age_seconds", {}, ingest_oldest_age);
  w.type("mrbc_serve_pending_requests", "gauge", "Accepted connections awaiting a worker.");
  w.sample("mrbc_serve_pending_requests", {}, std::uint64_t{pending_requests});
  w.type("mrbc_serve_ingest_batches_total", "counter", "Batches admitted via POST /ingest.");
  w.sample("mrbc_serve_ingest_batches_total", {}, load(counters_.batches_ingested));
  w.type("mrbc_serve_ingest_ops_total", "counter", "Edge ops admitted via POST /ingest.");
  w.sample("mrbc_serve_ingest_ops_total", {}, load(counters_.ops_ingested));
  w.type("mrbc_serve_applies_total", "counter", "Coalesced apply passes (epoch transitions).");
  w.sample("mrbc_serve_applies_total", {}, load(counters_.batches_applied));

  // Coalescing factor: admitted batches per apply pass. >1 means bursty
  // writers are amortizing recomputes, the whole point of the coalescing
  // ingest design.
  const std::uint64_t applied = load(counters_.batches_applied);
  const std::uint64_t admitted = load(counters_.batches_ingested);
  w.type("mrbc_serve_coalescing_factor", "gauge",
         "Admitted ingest batches per apply pass (cumulative and windowed).");
  w.sample("mrbc_serve_coalescing_factor", {{"window", "cumulative"}},
           applied == 0 ? 0.0 : static_cast<double>(admitted) / static_cast<double>(applied));
  for (const auto& win_def : kWindows) {
    const std::uint64_t win_applies = win.counter_sum(kWinApplies, win_def.seconds, now_s);
    const std::uint64_t win_batches = win.counter_sum(kWinIngestBatches, win_def.seconds, now_s);
    w.sample("mrbc_serve_coalescing_factor", {{"window", win_def.label}},
             win_applies == 0 ? 0.0
                              : static_cast<double>(win_batches) /
                                    static_cast<double>(win_applies));
  }
  w.type("mrbc_serve_window_apply_latency_us", "gauge",
         "Windowed apply (coalesce+recompute+publish) latency quantiles, microseconds.");
  for (const auto& win_def : kWindows) {
    const obs::WindowedMetrics::HistWindow ap =
        win.hist_window(kWinApplyMicros, win_def.seconds, now_s);
    for (const auto& q : kQuantiles) {
      w.sample("mrbc_serve_window_apply_latency_us",
               {{"quantile", q.label}, {"window", win_def.label}}, ap.percentile(q.pct));
    }
  }

  return http_response(200, "text/plain; version=0.0.4; charset=utf-8", w.take(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

std::string Server::handle_debug_slow(bool keep_alive) {
  const std::vector<SlowRequest> entries = telemetry_.slow_log();
  util::JsonWriter w;
  w.begin_object()
      .key("threshold_ms").value(std::uint64_t{telemetry_.slow_request_ms()})
      .key("capacity").value(std::uint64_t{telemetry_.slow_log_capacity()})
      .key("total_slow").value(telemetry_.slow_requests())
      .key("requests").begin_array();
  for (const SlowRequest& e : entries) {
    w.begin_object()
        .key("id").value(e.id)
        .key("unix_seconds").value(e.unix_seconds)
        .key("method").value(e.method)
        .key("target").value(e.target)
        .key("status").value(std::int64_t{e.status})
        .key("duration_ms").value(e.duration_ms)
        .end_object();
  }
  w.end_array().end_object();
  return http_response(200, "application/json", w.str(), keep_alive);
}

std::string Server::handle_debug_trace(const HttpRequest& req, bool keep_alive) {
  std::uint64_t seconds = 2;
  const std::string param = req.query_param("seconds");
  if (!param.empty() && (!parse_u64(param, seconds) || seconds == 0)) {
    return error_response(400, "seconds must be a positive integer", keep_alive);
  }
  seconds = std::min<std::uint64_t>(seconds, 30);
  if (!telemetry_.try_begin_trace_capture()) {
    return error_response(409, "a trace capture is already running", keep_alive);
  }
  obs::Tracer& tracer = obs::Tracer::global();
  std::string json;
  try {
    tracer.enable(std::size_t{1} << 17);
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    tracer.disable();
    // Let in-flight spans commit before snapshotting the ring; a capture
    // races live request/ingest threads by design.
    if (!tracer.quiesce(/*timeout_seconds=*/2.0)) {
      MRBC_LOG_WARN << "serve: trace capture exported with spans still open";
    }
    json = tracer.chrome_json();
  } catch (...) {
    tracer.disable();
    telemetry_.end_trace_capture();
    throw;
  }
  telemetry_.end_trace_capture();
  return http_response(200, "application/json", json, keep_alive,
                       {{"X-Trace-Seconds", std::to_string(seconds)}});
}

// ---- Ingest -----------------------------------------------------------------

std::string Server::handle_ingest(const HttpRequest& req, bool keep_alive) {
  // {"ops": [["+", u, v], ["-", u, v], {"op":"insert","src":u,"dst":v}]}
  stream::EdgeBatch batch;
  const util::JsonValue doc = util::json_parse(req.body);  // JsonError → 400
  const auto& ops = doc.at("ops").as_array();
  if (ops.size() > opts_.max_batch_ops) {
    return error_response(413, "batch exceeds max_batch_ops", keep_alive);
  }
  for (const util::JsonValue& op : ops) {
    std::string kind;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (op.is_array()) {
      const auto& a = op.as_array();
      if (a.size() != 3) return error_response(400, "op must be [kind, src, dst]", keep_alive);
      kind = a[0].as_string();
      src = a[1].as_u64();
      dst = a[2].as_u64();
    } else {
      kind = op.at("op").as_string();
      src = op.at("src").as_u64();
      dst = op.at("dst").as_u64();
    }
    if (src > graph::kInvalidVertex - 1 || dst > graph::kInvalidVertex - 1) {
      return error_response(400, "vertex id out of 32-bit range", keep_alive);
    }
    if (kind == "+" || kind == "insert" || kind == "i") {
      batch.insert(static_cast<graph::VertexId>(src), static_cast<graph::VertexId>(dst));
    } else if (kind == "-" || kind == "delete" || kind == "d" || kind == "erase") {
      batch.erase(static_cast<graph::VertexId>(src), static_cast<graph::VertexId>(dst));
    } else {
      return error_response(400, "op kind must be +/insert or -/delete", keep_alive);
    }
  }
  const bool wait = req.query_param("wait") == "1";
  const std::size_t num_ops = batch.size();

  std::uint64_t ticket = 0;
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(ingest_mu_);
    if (draining_.load(std::memory_order_acquire) || ingest_stop_) {
      return error_response(503, "draining", false);
    }
    if (ingest_queue_.size() >= opts_.max_pending_ingest) {
      counters_.rejected_ingest.fetch_add(1, std::memory_order_relaxed);
      return error_response(429, "ingest queue full", keep_alive);
    }
    ticket = next_ticket_++;
    ingest_queue_.push_back({std::move(batch), ticket, Clock::now()});
    depth = ingest_queue_.size();
    counters_.batches_ingested.fetch_add(1, std::memory_order_relaxed);
    counters_.ops_ingested.fetch_add(num_ops, std::memory_order_relaxed);
    telemetry_.on_ingest_admitted(num_ops);
    if (wait) {
      ingest_cv_.notify_one();
      applied_cv_.wait(lock, [this, ticket] { return applied_ticket_ >= ticket; });
    }
  }
  if (!wait) ingest_cv_.notify_one();

  util::JsonWriter w;
  if (wait) {
    const EpochStore::Ptr snap = store_.current();
    w.begin_object()
        .key("applied").value(true)
        .key("ticket").value(ticket)
        .key("ops").value(std::uint64_t{num_ops})
        .key("epoch").value(snap->epoch)
        .end_object();
    return http_response(200, "application/json", w.str(), keep_alive,
                         {{"X-Epoch", std::to_string(snap->epoch)}});
  }
  w.begin_object()
      .key("queued").value(true)
      .key("ticket").value(ticket)
      .key("ops").value(std::uint64_t{num_ops})
      .key("queue_depth").value(std::uint64_t{depth})
      .end_object();
  return http_response(202, "application/json", w.str(), keep_alive);
}

void Server::ingest_loop() {
  while (true) {
    std::vector<PendingBatch> pending;
    {
      std::unique_lock<std::mutex> lock(ingest_mu_);
      ingest_cv_.wait(lock, [this] { return !ingest_queue_.empty() || ingest_stop_; });
      if (ingest_queue_.empty()) return;  // stopped and fully drained
      // Batch coalescing: take EVERYTHING queued right now and fold it
      // into one epoch transition — bursty writers amortize one recompute
      // instead of paying one per batch.
      pending.assign(std::make_move_iterator(ingest_queue_.begin()),
                     std::make_move_iterator(ingest_queue_.end()));
      ingest_queue_.clear();
    }
    if (opts_.debug_apply_delay_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.debug_apply_delay_ms));
    }
    stream::EdgeBatch merged;
    for (PendingBatch& p : pending) {
      merged.ops.insert(merged.ops.end(), p.batch.ops.begin(), p.batch.ops.end());
    }
    const Clock::time_point t0 = Clock::now();
    {
      obs::Span span(obs::Category::kServe, "serve/apply");
      engine_->apply(merged);
    }
    publish_epoch(pending.size(), seconds_since(t0));
    counters_.batches_applied.fetch_add(1, std::memory_order_relaxed);
    telemetry_.on_apply(seconds_since(t0) * 1e6);
    if (obs::metrics_enabled()) {
      obs::Metrics::global()
          .named("serve/coalesced_batches")
          .record(static_cast<std::uint64_t>(pending.size()));
    }
    {
      std::lock_guard<std::mutex> lock(ingest_mu_);
      applied_ticket_ = pending.back().ticket;
    }
    applied_cv_.notify_all();
    ++batches_since_checkpoint_;
    maybe_checkpoint(/*force=*/false);
  }
}

}  // namespace mrbc::serve
