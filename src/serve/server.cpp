#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "analytics/connected_components.h"
#include "analytics/kcore.h"
#include "analytics/pagerank.h"
#include "analytics/topk.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "util/log.h"

namespace mrbc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Comma-separated vertex-id list ("1,5,9"); false on any malformed entry.
bool parse_vertex_list(const std::string& s, std::vector<std::uint64_t>& out) {
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::uint64_t v = 0;
    if (!parse_u64(item, v)) return false;
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

// ---- Construction / engine bring-up ----------------------------------------

Server::Server(graph::Graph base, ServerOptions options) : opts_(std::move(options)) {
  const Clock::time_point t0 = Clock::now();
  const std::string ckpt =
      opts_.checkpoint_dir.empty() ? std::string{} : checkpoint_path(opts_.checkpoint_dir);
  if (!opts_.checkpoint_dir.empty()) std::filesystem::create_directories(opts_.checkpoint_dir);
  if (!ckpt.empty() && !opts_.fresh_start && std::filesystem::exists(ckpt)) {
    engine_ = std::make_unique<stream::IncrementalBc>(stream::IncrementalBc::load(ckpt, opts_.bc));
    MRBC_LOG_INFO << "serve: restored engine from " << ckpt << " (epoch " << engine_->epoch()
                  << ")";
  } else {
    engine_ = std::make_unique<stream::IncrementalBc>(std::move(base), opts_.bc);
  }
  publish_epoch(/*coalesced=*/0, seconds_since(t0));
}

Server::~Server() {
  stop();
}

std::uint64_t Server::engine_epoch() const {
  const EpochStore::Ptr snap = store_.current();
  return snap ? snap->epoch : 0;
}

void Server::publish_epoch(std::size_t coalesced, double recompute_seconds) {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = engine_->epoch();
  snap->num_vertices = engine_->delta().num_vertices();
  snap->num_edges = engine_->delta().num_edges();
  snap->bc = engine_->scaled_scores();
  snap->coalesced_batches = coalesced;
  if (opts_.run_analytics && snap->num_vertices > 0) {
    const graph::Graph& g = engine_->delta().base();
    const auto hosts = std::max<partition::HostId>(opts_.bc.mrbc.num_hosts, 1);
    analytics::PagerankOptions pr;
    pr.max_iterations = opts_.pagerank_iterations;
    snap->pagerank = analytics::pagerank(g, hosts, pr).rank;
    snap->component = analytics::connected_components(g, hosts).component;
    // Min-label CC: a component's label is its smallest member, so the
    // component count is the number of self-labeled vertices.
    for (graph::VertexId v = 0; v < snap->num_vertices; ++v) {
      if (snap->component[v] == v) ++snap->num_components;
    }
    snap->kcore_k = opts_.kcore_k;
    const auto kc = analytics::kcore(g, opts_.kcore_k, hosts);
    snap->in_kcore.resize(snap->num_vertices);
    for (graph::VertexId v = 0; v < snap->num_vertices; ++v) {
      snap->in_kcore[v] = kc.in_core[v] ? 1 : 0;
    }
  }
  snap->recompute_seconds = recompute_seconds;
  store_.publish(std::move(snap));
  counters_.epochs_published.fetch_add(1, std::memory_order_relaxed);
}

void Server::maybe_checkpoint(bool force) {
  if (opts_.checkpoint_dir.empty()) return;
  if (!force &&
      (opts_.checkpoint_every == 0 || batches_since_checkpoint_ < opts_.checkpoint_every)) {
    return;
  }
  engine_->save(checkpoint_path(opts_.checkpoint_dir));
  batches_since_checkpoint_ = 0;
  counters_.checkpoints_written.fetch_add(1, std::memory_order_relaxed);
}

// ---- Lifecycle --------------------------------------------------------------

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(opts_.port) +
                             ": " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  // /stats exports histograms, so the metrics layer comes up with the
  // daemon (recording sites everywhere else in the tree light up too).
  obs::Metrics::global().enable();

  draining_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_stop_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_stop_ = false;
  }
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { accept_loop(); });
  ingest_thread_ = std::thread([this] { ingest_loop(); });
  const std::size_t threads = std::max<std::size_t>(opts_.request_threads, 1);
  request_pool_ = std::make_unique<util::ThreadPool>(threads);
  dispatcher_thread_ = std::thread([this, threads] {
    // One long-running pool job: every participant is a request worker
    // draining the shared connection queue until drain.
    request_pool_->parallel_for_chunks(0, threads, 1,
                                       [this](std::size_t, std::size_t, std::size_t) {
                                         request_worker();
                                       });
  });
  MRBC_LOG_INFO << "serve: listening on 127.0.0.1:" << port_ << " (" << threads
                << " request threads)";
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting (the accept loop notices draining_ within its poll
  //    timeout and exits; the closed fd makes pending accepts fail fast).
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Let the request workers finish everything already admitted, then
  //    release them.
  while (true) {
    std::unique_lock<std::mutex> lock(conn_mu_);
    if (conn_queue_.empty()) break;
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_stop_ = true;
    // Kick idle keep-alive connections out of recv() — their workers see
    // EOF, close, and exit without waiting for the socket timeout. A
    // response mid-send still goes out (only the read side is shut).
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  conn_cv_.notify_all();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  request_pool_.reset();

  // 3. Drain the ingest queue: every acknowledged batch is applied and
  //    published before the process exits.
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    ingest_stop_ = true;
  }
  ingest_cv_.notify_all();
  if (ingest_thread_.joinable()) ingest_thread_.join();

  // 4. Durable goodbye at a guaranteed batch boundary.
  maybe_checkpoint(/*force=*/true);
  MRBC_LOG_INFO << "serve: drained (" << counters_.requests_served.load(std::memory_order_relaxed)
                << " requests, " << counters_.epochs_published.load(std::memory_order_relaxed)
                << " epochs)";
}

// ---- Accept / admission control ---------------------------------------------

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conn_queue_.size() < opts_.max_pending_requests) {
        conn_queue_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      conn_cv_.notify_one();
    } else {
      // Admission control: reject at the door instead of queueing without
      // bound. The 429 is written inline (cheap — the response is tiny).
      counters_.rejected_requests.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, http_response(429, "application/json",
                                 "{\"error\":\"too many pending requests\"}", false,
                                 {{"Retry-After", "1"}}));
      ::close(fd);
    }
  }
}

// ---- Request loop -----------------------------------------------------------

void Server::request_worker() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] { return !conn_queue_.empty() || conn_stop_; });
      if (conn_queue_.empty()) return;  // conn_stop_
      fd = conn_queue_.front();
      conn_queue_.pop_front();
      active_fds_.push_back(fd);  // stop() can shut idle keep-alives down
    }
    try {
      handle_connection(fd);
    } catch (const std::exception& e) {
      MRBC_LOG_WARN << "serve: connection handler error: " << e.what();
      ::close(fd);
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.erase(std::find(active_fds_.begin(), active_fds_.end(), fd));
    }
  }
}

void Server::handle_connection(int fd) {
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  HttpParser parser(opts_.http_limits);
  std::string carry;  ///< bytes past the current message (pipelining)
  char buf[4096];
  std::size_t served_here = 0;
  while (true) {
    if (!carry.empty() && !parser.complete() && !parser.error()) {
      const std::size_t used = parser.consume(carry);
      carry.erase(0, used);
    }
    if (!parser.complete() && !parser.error()) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;  // peer closed, or idle past the socket timeout
      const std::size_t used = parser.consume(buf, static_cast<std::size_t>(n));
      carry.append(buf + used, static_cast<std::size_t>(n) - used);
      continue;
    }
    if (parser.error()) {
      counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      send_all(fd, error_response(parser.error_status(), parser.error_reason(), false));
      break;
    }

    HttpRequest req = parser.take_request();
    ++served_here;
    const bool keep = req.keep_alive() && served_here < opts_.max_keepalive_requests &&
                      !draining_.load(std::memory_order_acquire);
    if (opts_.debug_handler_delay_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts_.debug_handler_delay_ms));
    }
    const Clock::time_point t0 = Clock::now();
    std::string resp;
    try {
      resp = dispatch(req, keep);
    } catch (const util::JsonError& e) {
      counters_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      resp = error_response(400, e.what(), keep);
    } catch (const std::exception& e) {
      resp = error_response(500, e.what(), false);
    }
    if (obs::metrics_enabled()) {
      obs::Metrics::global()
          .named("serve/request_us")
          .record(static_cast<std::uint64_t>(seconds_since(t0) * 1e6));
    }
    if (!send_all(fd, resp)) break;
    counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
    if (!keep) break;
    parser.reset();
  }
  ::close(fd);
}

// ---- Routing ----------------------------------------------------------------

std::string Server::error_response(int status, const std::string& message, bool keep_alive) {
  util::JsonWriter w;
  w.begin_object().key("error").value(message).key("status").value(std::int64_t{status});
  w.end_object();
  return http_response(status, "application/json", w.str(), keep_alive);
}

std::string Server::dispatch(const HttpRequest& req, bool keep_alive) {
  if (req.path == "/ingest") {
    if (req.method != "POST") return error_response(405, "POST /ingest", keep_alive);
    return handle_ingest(req, keep_alive);
  }
  if (req.method != "GET" && req.method != "HEAD") {
    return error_response(405, "method not allowed", keep_alive);
  }
  const EpochStore::Ptr snap = store_.current();  // pinned for this request

  if (req.path == "/healthz") {
    util::JsonWriter w;
    w.begin_object().key("status").value("ok").key("epoch").value(snap->epoch).end_object();
    return http_response(200, "application/json", w.str(), keep_alive);
  }
  if (req.path == "/epoch") {
    util::JsonWriter w;
    w.begin_object()
        .key("epoch").value(snap->epoch)
        .key("publishes").value(snap->publish_seq)
        .key("vertices").value(std::uint64_t{snap->num_vertices})
        .key("edges").value(std::uint64_t{snap->num_edges})
        .end_object();
    return http_response(200, "application/json", w.str(), keep_alive,
                         {{"X-Epoch", std::to_string(snap->epoch)}});
  }
  if (req.path == "/bc") return handle_bc(req, *snap, keep_alive);
  if (req.path == "/topk") return handle_topk(req, *snap, keep_alive);
  if (req.path == "/pagerank" || req.path == "/cc" || req.path == "/kcore") {
    return handle_vertex_metric(req, *snap, keep_alive, req.path.substr(1));
  }
  if (req.path == "/stats") return handle_stats(*snap, keep_alive);
  return error_response(404, "no such endpoint: " + req.path, keep_alive);
}

std::string Server::handle_bc(const HttpRequest& req, const EpochSnapshot& snap,
                              bool keep_alive) {
  util::JsonWriter w;
  const std::vector<std::pair<std::string, std::string>> epoch_hdr = {
      {"X-Epoch", std::to_string(snap.epoch)}};
  if (req.query_param("all") == "1") {
    w.begin_object().key("epoch").value(snap.epoch).key("n").value(
        std::uint64_t{snap.num_vertices});
    w.key("bc").begin_array();
    for (double b : snap.bc) w.value(b);
    w.end_array().end_object();
    return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
  }
  const std::string multi = req.query_param("vertices");
  if (!multi.empty()) {
    std::vector<std::uint64_t> ids;
    if (!parse_vertex_list(multi, ids)) {
      return error_response(400, "malformed vertices list", keep_alive);
    }
    for (std::uint64_t v : ids) {
      if (v >= snap.bc.size()) {
        return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
      }
    }
    w.begin_object().key("epoch").value(snap.epoch).key("vertices").begin_array();
    for (std::uint64_t v : ids) w.value(v);
    w.end_array().key("bc").begin_array();
    for (std::uint64_t v : ids) w.value(snap.bc[v]);
    w.end_array().end_object();
    return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
  }
  std::uint64_t v = 0;
  if (!parse_u64(req.query_param("vertex"), v)) {
    return error_response(400, "vertex=<id>, vertices=<id,id,...> or all=1 required", keep_alive);
  }
  if (v >= snap.bc.size()) {
    return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
  }
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("vertex").value(v)
      .key("bc").value(snap.bc[v])
      .end_object();
  return http_response(200, "application/json", w.str(), keep_alive, epoch_hdr);
}

std::string Server::handle_topk(const HttpRequest& req, const EpochSnapshot& snap,
                                bool keep_alive) {
  std::uint64_t k = 10;
  const std::string k_param = req.query_param("k");
  if (!k_param.empty() && !parse_u64(k_param, k)) {
    return error_response(400, "malformed k", keep_alive);
  }
  const std::string metric = req.query_param("metric", "bc");
  const std::vector<double>* scores = nullptr;
  if (metric == "bc") {
    scores = &snap.bc;
  } else if (metric == "pagerank") {
    if (snap.pagerank.empty()) return error_response(404, "analytics disabled", keep_alive);
    scores = &snap.pagerank;
  } else {
    return error_response(400, "metric must be bc or pagerank", keep_alive);
  }
  const auto ranked = analytics::top_k(*scores, static_cast<std::size_t>(k));
  util::JsonWriter w;
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("metric").value(metric)
      .key("k").value(std::uint64_t{ranked.size()})
      .key("results").begin_array();
  for (const auto& r : ranked) {
    w.begin_object().key("vertex").value(std::uint64_t{r.vertex}).key("score").value(r.score);
    w.end_object();
  }
  w.end_array().end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

std::string Server::handle_vertex_metric(const HttpRequest& req, const EpochSnapshot& snap,
                                         bool keep_alive, const std::string& metric) {
  std::uint64_t v = 0;
  if (!parse_u64(req.query_param("vertex"), v)) {
    return error_response(400, "vertex=<id> required", keep_alive);
  }
  if (v >= snap.num_vertices) {
    return error_response(404, "vertex " + std::to_string(v) + " out of range", keep_alive);
  }
  const bool have = metric == "pagerank" ? !snap.pagerank.empty()
                    : metric == "cc"     ? !snap.component.empty()
                                         : !snap.in_kcore.empty();
  if (!have) return error_response(404, "analytics disabled", keep_alive);
  util::JsonWriter w;
  w.begin_object().key("epoch").value(snap.epoch).key("vertex").value(v);
  if (metric == "pagerank") {
    w.key("pagerank").value(snap.pagerank[v]);
  } else if (metric == "cc") {
    w.key("component").value(std::uint64_t{snap.component[v]});
    w.key("num_components").value(std::uint64_t{snap.num_components});
  } else {
    w.key("k").value(std::uint64_t{snap.kcore_k});
    w.key("in_kcore").value(snap.in_kcore[v] != 0);
  }
  w.end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

std::string Server::handle_stats(const EpochSnapshot& snap, bool keep_alive) {
  std::size_t pending_requests = 0;
  std::size_t pending_ingest = 0;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    pending_requests = conn_queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    pending_ingest = ingest_queue_.size();
  }
  const auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  util::JsonWriter w;
  w.begin_object()
      .key("epoch").value(snap.epoch)
      .key("publishes").value(snap.publish_seq)
      .key("vertices").value(std::uint64_t{snap.num_vertices})
      .key("edges").value(std::uint64_t{snap.num_edges})
      .key("recompute_seconds").value(snap.recompute_seconds)
      .key("coalesced_batches").value(std::uint64_t{snap.coalesced_batches});
  w.key("counters").begin_object()
      .key("connections_accepted").value(load(counters_.connections_accepted))
      .key("requests_served").value(load(counters_.requests_served))
      .key("rejected_requests").value(load(counters_.rejected_requests))
      .key("rejected_ingest").value(load(counters_.rejected_ingest))
      .key("bad_requests").value(load(counters_.bad_requests))
      .key("batches_ingested").value(load(counters_.batches_ingested))
      .key("ops_ingested").value(load(counters_.ops_ingested))
      .key("batches_applied").value(load(counters_.batches_applied))
      .key("epochs_published").value(load(counters_.epochs_published))
      .key("checkpoints_written").value(load(counters_.checkpoints_written))
      .end_object();
  w.key("queues").begin_object()
      .key("pending_requests").value(std::uint64_t{pending_requests})
      .key("pending_ingest").value(std::uint64_t{pending_ingest})
      .key("max_pending_requests").value(std::uint64_t{opts_.max_pending_requests})
      .key("max_pending_ingest").value(std::uint64_t{opts_.max_pending_ingest})
      .end_object();
  w.key("metrics").raw(obs::Metrics::global().json());
  w.end_object();
  return http_response(200, "application/json", w.str(), keep_alive,
                       {{"X-Epoch", std::to_string(snap.epoch)}});
}

// ---- Ingest -----------------------------------------------------------------

std::string Server::handle_ingest(const HttpRequest& req, bool keep_alive) {
  // {"ops": [["+", u, v], ["-", u, v], {"op":"insert","src":u,"dst":v}]}
  stream::EdgeBatch batch;
  const util::JsonValue doc = util::json_parse(req.body);  // JsonError → 400
  const auto& ops = doc.at("ops").as_array();
  if (ops.size() > opts_.max_batch_ops) {
    return error_response(413, "batch exceeds max_batch_ops", keep_alive);
  }
  for (const util::JsonValue& op : ops) {
    std::string kind;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (op.is_array()) {
      const auto& a = op.as_array();
      if (a.size() != 3) return error_response(400, "op must be [kind, src, dst]", keep_alive);
      kind = a[0].as_string();
      src = a[1].as_u64();
      dst = a[2].as_u64();
    } else {
      kind = op.at("op").as_string();
      src = op.at("src").as_u64();
      dst = op.at("dst").as_u64();
    }
    if (src > graph::kInvalidVertex - 1 || dst > graph::kInvalidVertex - 1) {
      return error_response(400, "vertex id out of 32-bit range", keep_alive);
    }
    if (kind == "+" || kind == "insert" || kind == "i") {
      batch.insert(static_cast<graph::VertexId>(src), static_cast<graph::VertexId>(dst));
    } else if (kind == "-" || kind == "delete" || kind == "d" || kind == "erase") {
      batch.erase(static_cast<graph::VertexId>(src), static_cast<graph::VertexId>(dst));
    } else {
      return error_response(400, "op kind must be +/insert or -/delete", keep_alive);
    }
  }
  const bool wait = req.query_param("wait") == "1";
  const std::size_t num_ops = batch.size();

  std::uint64_t ticket = 0;
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(ingest_mu_);
    if (draining_.load(std::memory_order_acquire) || ingest_stop_) {
      return error_response(503, "draining", false);
    }
    if (ingest_queue_.size() >= opts_.max_pending_ingest) {
      counters_.rejected_ingest.fetch_add(1, std::memory_order_relaxed);
      return error_response(429, "ingest queue full", keep_alive);
    }
    ticket = next_ticket_++;
    ingest_queue_.push_back({std::move(batch), ticket});
    depth = ingest_queue_.size();
    counters_.batches_ingested.fetch_add(1, std::memory_order_relaxed);
    counters_.ops_ingested.fetch_add(num_ops, std::memory_order_relaxed);
    if (wait) {
      ingest_cv_.notify_one();
      applied_cv_.wait(lock, [this, ticket] { return applied_ticket_ >= ticket; });
    }
  }
  if (!wait) ingest_cv_.notify_one();

  util::JsonWriter w;
  if (wait) {
    const EpochStore::Ptr snap = store_.current();
    w.begin_object()
        .key("applied").value(true)
        .key("ticket").value(ticket)
        .key("ops").value(std::uint64_t{num_ops})
        .key("epoch").value(snap->epoch)
        .end_object();
    return http_response(200, "application/json", w.str(), keep_alive,
                         {{"X-Epoch", std::to_string(snap->epoch)}});
  }
  w.begin_object()
      .key("queued").value(true)
      .key("ticket").value(ticket)
      .key("ops").value(std::uint64_t{num_ops})
      .key("queue_depth").value(std::uint64_t{depth})
      .end_object();
  return http_response(202, "application/json", w.str(), keep_alive);
}

void Server::ingest_loop() {
  while (true) {
    std::vector<PendingBatch> pending;
    {
      std::unique_lock<std::mutex> lock(ingest_mu_);
      ingest_cv_.wait(lock, [this] { return !ingest_queue_.empty() || ingest_stop_; });
      if (ingest_queue_.empty()) return;  // stopped and fully drained
      // Batch coalescing: take EVERYTHING queued right now and fold it
      // into one epoch transition — bursty writers amortize one recompute
      // instead of paying one per batch.
      pending.assign(std::make_move_iterator(ingest_queue_.begin()),
                     std::make_move_iterator(ingest_queue_.end()));
      ingest_queue_.clear();
    }
    stream::EdgeBatch merged;
    for (PendingBatch& p : pending) {
      merged.ops.insert(merged.ops.end(), p.batch.ops.begin(), p.batch.ops.end());
    }
    const Clock::time_point t0 = Clock::now();
    engine_->apply(merged);
    publish_epoch(pending.size(), seconds_since(t0));
    counters_.batches_applied.fetch_add(1, std::memory_order_relaxed);
    if (obs::metrics_enabled()) {
      obs::Metrics::global()
          .named("serve/coalesced_batches")
          .record(static_cast<std::uint64_t>(pending.size()));
    }
    {
      std::lock_guard<std::mutex> lock(ingest_mu_);
      applied_ticket_ = pending.back().ticket;
    }
    applied_cv_.notify_all();
    ++batches_since_checkpoint_;
    maybe_checkpoint(/*force=*/false);
  }
}

}  // namespace mrbc::serve
