#pragma once
// BC-as-a-service: a long-running daemon serving centrality/analytics
// queries over localhost HTTP/1.1 + JSON while absorbing edge-update
// batches, with epoch-versioned snapshots so queries never block ingest
// and never observe torn state.
//
// Thread architecture (all owned by Server):
//   * accept thread — poll()s the listening socket, applies admission
//     control: a connection that does not fit in the bounded pending
//     queue is answered 429 inline and closed (heavy traffic degrades to
//     fast rejections, not unbounded memory);
//   * request loop — a dedicated util::ThreadPool whose one long-running
//     job is "each participant drains the connection queue until drain";
//     handlers pin an EpochStore snapshot per request and only read it;
//   * ingest thread — drains the bounded ingest queue, coalescing every
//     queued batch into one EdgeBatch (bursty writers amortize the
//     recompute), applies it through stream::IncrementalBc, recomputes
//     the optional analytics, and publishes a fresh epoch.
//
// Endpoints (all JSON; every result carries the epoch it was read from,
// duplicated in an X-Epoch header):
//   GET  /healthz            liveness + current epoch
//   GET  /epoch              epoch, publishes, |V|, |E|
//   GET  /bc?vertex=3        one vertex  (?vertices=1,2,3 for several,
//                            ?all=1 for the full vector)
//   GET  /topk?k=10&metric=bc|pagerank   deterministic ranking
//   GET  /pagerank?vertex=3  per-vertex rank
//   GET  /cc?vertex=3        component label (+ component count)
//   GET  /kcore?vertex=3     k-core membership at the configured k
//   GET  /stats              server counters + queue depths + the full
//                            obs::Metrics histogram export
//   POST /ingest             {"ops": [["+",u,v], ["-",u,v], ...]}
//                            202-queued by default; ?wait=1 blocks until
//                            the batch's epoch is published (tests/CI)
//
// Graceful drain (stop(), or SIGTERM via bc_tool --serve): stop accepting,
// finish queued requests, apply every acknowledged ingest batch, persist a
// durable IncrementalBc snapshot when checkpoint_dir is set, then join.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/epoch_store.h"
#include "serve/http.h"
#include "serve/telemetry.h"
#include "stream/incremental_bc.h"
#include "util/thread_pool.h"

namespace mrbc::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see Server::port).
  std::uint16_t port = 0;
  /// Request-loop parallelism (its own ThreadPool, distinct from the
  /// global compute pool the recompute kernels use).
  std::size_t request_threads = 4;
  /// Accepted-but-unhandled connections beyond this are answered 429.
  std::size_t max_pending_requests = 64;
  /// Queued ingest batches beyond this are answered 429.
  std::size_t max_pending_ingest = 256;
  /// Requests served per keep-alive connection before Connection: close.
  std::size_t max_keepalive_requests = 1024;
  HttpParser::Limits http_limits;
  /// Ops allowed in one /ingest batch (413 above).
  std::size_t max_batch_ops = 1u << 20;

  /// Recompute pagerank/cc/kcore per epoch (BC is always maintained).
  bool run_analytics = true;
  std::uint32_t kcore_k = 2;
  std::uint32_t pagerank_iterations = 20;

  /// When non-empty: restart from <dir>/serve.ckpt if present (unless
  /// fresh_start), persist on drain and every checkpoint_every batches.
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 0;  ///< 0 = only on drain
  bool fresh_start = false;          ///< ignore an existing serve.ckpt

  /// Test hook: per-request handler delay (admission-control tests fill
  /// the pending queue deterministically). 0 in production.
  std::uint32_t debug_handler_delay_ms = 0;
  /// Test hook: delay before each coalesced apply (queue-age tests keep
  /// batches queued deterministically). 0 in production.
  std::uint32_t debug_apply_delay_ms = 0;

  /// Live telemetry plane: /metrics + /debug/slow exposition, windowed
  /// qps/latency, per-request ids and tracer spans. Off = every recording
  /// site is one relaxed load + branch (bench/micro_obs budget).
  bool telemetry = true;
  /// Requests at least this slow enter the bounded slow-request log
  /// (GET /debug/slow). kSlowRequestMsUnset = MRBC_SLOW_REQUEST_MS env
  /// override, else 250 ms.
  std::uint32_t slow_request_ms = kSlowRequestMsUnset;
  /// Bound on retained slow-log entries (oldest evicted).
  std::size_t slow_log_capacity = 256;

  /// Engine configuration for the maintained BC (samples, hosts, policy).
  stream::IncrementalBcOptions bc;
};

/// Monotonic counters exported by /stats. Relaxed atomics: exactness
/// across a racing read is not load-bearing, monotonicity is.
struct ServerCounters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> requests_served{0};
  std::atomic<std::uint64_t> rejected_requests{0};  ///< 429 at the door
  std::atomic<std::uint64_t> rejected_ingest{0};    ///< 429 ingest queue full
  std::atomic<std::uint64_t> bad_requests{0};       ///< 4xx/5xx parse failures
  std::atomic<std::uint64_t> batches_ingested{0};   ///< accepted via POST
  std::atomic<std::uint64_t> ops_ingested{0};
  std::atomic<std::uint64_t> batches_applied{0};    ///< after coalescing
  std::atomic<std::uint64_t> epochs_published{0};
  std::atomic<std::uint64_t> checkpoints_written{0};
};

class Server {
 public:
  /// Takes the base graph; runs the initial BC (and analytics) and
  /// publishes epoch 0 before start() returns control flow to callers —
  /// or restores the engine from <checkpoint_dir>/serve.ckpt when present.
  Server(graph::Graph base, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + spawns the accept/request/ingest machinery. Throws
  /// std::runtime_error when the port cannot be bound.
  void start();
  /// Graceful drain; idempotent. Safe to call from a signal-watcher
  /// thread, not from a handler.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (after start(); the ephemeral choice when options.port=0).
  std::uint16_t port() const { return port_; }

  const EpochStore& store() const { return store_; }
  const ServerCounters& counters() const { return counters_; }
  const Telemetry& telemetry() const { return telemetry_; }
  /// Epoch of the engine (== last published snapshot's epoch).
  std::uint64_t engine_epoch() const;
  /// Age of the oldest queued-but-unapplied ingest batch; 0 when empty.
  /// Depth alone hides a stuck apply thread — age does not.
  double ingest_oldest_age_seconds() const;

  static std::string checkpoint_path(const std::string& dir) { return dir + "/serve.ckpt"; }

 private:
  struct PendingBatch {
    stream::EdgeBatch batch;
    std::uint64_t ticket = 0;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void accept_loop();
  void request_worker();
  void ingest_loop();
  void handle_connection(int fd);
  /// Returns the serialized response for one parsed request.
  std::string dispatch(const HttpRequest& req, bool keep_alive);

  std::string handle_bc(const HttpRequest& req, const EpochSnapshot& snap, bool keep_alive);
  std::string handle_topk(const HttpRequest& req, const EpochSnapshot& snap, bool keep_alive);
  std::string handle_vertex_metric(const HttpRequest& req, const EpochSnapshot& snap,
                                   bool keep_alive, const std::string& metric);
  std::string handle_stats(const EpochSnapshot& snap, bool keep_alive);
  std::string handle_ingest(const HttpRequest& req, bool keep_alive);
  std::string handle_metrics(const EpochSnapshot& snap, bool keep_alive);
  std::string handle_debug_slow(bool keep_alive);
  std::string handle_debug_trace(const HttpRequest& req, bool keep_alive);
  std::string error_response(int status, const std::string& message, bool keep_alive);

  /// Builds + publishes a snapshot from the engine's current state.
  void publish_epoch(std::size_t coalesced, double recompute_seconds);
  void maybe_checkpoint(bool force);

  ServerOptions opts_;
  Telemetry telemetry_;
  std::unique_ptr<stream::IncrementalBc> engine_;  ///< ingest thread only (after init)
  EpochStore store_;
  ServerCounters counters_;
  std::chrono::steady_clock::time_point start_time_{};

  /// Atomic: stop() closes and resets it to -1 while accept_loop() is
  /// still polling it; the loop tolerates the stale/-1 fd (poll/accept
  /// fail benignly) and exits on the next draining_ check.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  // Pending connections (accept thread -> request workers).
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<int> conn_queue_;
  bool conn_stop_ = false;           ///< guarded by conn_mu_
  std::vector<int> active_fds_;      ///< connections being handled; guarded by conn_mu_

  // Pending ingest batches (request workers -> ingest thread).
  mutable std::mutex ingest_mu_;
  std::condition_variable ingest_cv_;
  std::condition_variable applied_cv_;
  std::deque<PendingBatch> ingest_queue_;
  std::uint64_t next_ticket_ = 1;     ///< guarded by ingest_mu_
  std::uint64_t applied_ticket_ = 0;  ///< guarded by ingest_mu_
  bool ingest_stop_ = false;          ///< guarded by ingest_mu_
  std::size_t batches_since_checkpoint_ = 0;  ///< ingest thread only

  std::thread accept_thread_;
  std::thread ingest_thread_;
  std::thread dispatcher_thread_;  ///< runs the pool's request-loop job
  std::unique_ptr<util::ThreadPool> request_pool_;
};

}  // namespace mrbc::serve
