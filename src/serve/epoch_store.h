#pragma once
// RCU-style epoch-versioned result store: the ingest thread publishes
// immutable snapshots; request handlers pin whichever snapshot is current
// when they start and read it without locks for the rest of the request.
// A snapshot is never mutated after publish, so a response can never mix
// fields from two epochs — the epoch id it carries describes every byte
// in it. Old epochs die when the last pinned reader drops its shared_ptr.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/bc_common.h"
#include "graph/graph.h"

namespace mrbc::serve {

/// One immutable epoch of results. Built off-line by the ingest thread,
/// then published; readers treat it as const forever after.
struct EpochSnapshot {
  std::uint64_t epoch = 0;        ///< DeltaGraph epoch the scores describe
  std::uint64_t publish_seq = 0;  ///< store ordinal (monotonic, starts at 1)
  graph::VertexId num_vertices = 0;
  graph::EdgeId num_edges = 0;

  core::BcScores bc;  ///< n/k-scaled estimates (IncrementalBc::scaled_scores)
  /// Optional per-epoch analytics (empty when ServerOptions::analytics off).
  std::vector<double> pagerank;
  std::vector<graph::VertexId> component;  ///< CC label per vertex
  std::vector<std::uint8_t> in_kcore;      ///< k-core membership at kcore_k
  std::uint32_t kcore_k = 0;
  std::size_t num_components = 0;

  double recompute_seconds = 0;  ///< wall time spent producing this epoch
  std::size_t coalesced_batches = 0;  ///< ingest batches folded into it
};

class EpochStore {
 public:
  using Ptr = std::shared_ptr<const EpochSnapshot>;

  /// Pin the current epoch. Never blocks publishers for more than the
  /// pointer copy; the returned snapshot stays valid (and unchanged) for
  /// as long as the caller holds it.
  Ptr current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  /// Atomically replace the current epoch. Stamps publish_seq.
  void publish(std::shared_ptr<EpochSnapshot> snap) {
    std::lock_guard<std::mutex> lock(mu_);
    snap->publish_seq = ++publishes_;
    snap_ = std::move(snap);
  }

  /// Number of publishes so far (0 before the first).
  std::uint64_t publishes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return publishes_;
  }

 private:
  mutable std::mutex mu_;
  Ptr snap_;
  std::uint64_t publishes_ = 0;
};

}  // namespace mrbc::serve
