#pragma once
// Minimal dependency-free HTTP/1.1 for the BC service daemon: an
// incremental request parser (fed raw bytes as they arrive off the
// socket, byte-split agnostic — the fuzz tests feed every chunking),
// a response serializer, and a tiny blocking client used by the test
// suite and the load-generator bench. Scope is deliberately narrow:
// GET/POST/HEAD, Content-Length bodies only (Transfer-Encoding is
// rejected with 501), HTTP/1.0 and 1.1, bounded header and body sizes
// so a malicious peer cannot balloon the daemon's memory.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mrbc::serve {

struct HttpRequest {
  std::string method;   ///< uppercase as received (GET, POST, ...)
  std::string target;   ///< raw request target (/bc?vertex=3)
  std::string path;     ///< target before '?', %XX-decoded
  std::map<std::string, std::string> query;  ///< decoded key → value
  int version_minor = 1;  ///< 0 or 1 (HTTP/1.x)
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
  std::string body;

  bool keep_alive() const;
  /// Query parameter lookup; returns `fallback` when absent.
  std::string query_param(const std::string& key, const std::string& fallback = "") const;
};

/// Incremental request parser. Feed bytes with consume(); once complete(),
/// take the request with request() and call reset() to parse the next one
/// on the same connection (pipelining leftovers are retained).
class HttpParser {
 public:
  struct Limits {
    std::size_t max_head_bytes = 16 * 1024;       ///< request line + headers
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  enum class State : std::uint8_t { kHead, kBody, kComplete, kError };

  /// Consumes as much of [data, data+len) as the current message needs.
  /// Returns the number of bytes consumed; the remainder (start of a
  /// pipelined next request) should be re-fed after reset().
  std::size_t consume(const char* data, std::size_t len);
  std::size_t consume(std::string_view s) { return consume(s.data(), s.size()); }

  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool error() const { return state_ == State::kError; }
  /// HTTP status code describing the parse failure (400, 431, 413, 501,
  /// 505); 0 while not in the error state.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  const HttpRequest& request() const { return request_; }
  HttpRequest take_request() { return std::move(request_); }

  /// Ready for the next message on the same connection.
  void reset();

 private:
  void parse_head();
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void on_headers_done();
  void fail(int status, std::string reason);

  Limits limits_;
  State state_ = State::kHead;
  int error_status_ = 0;
  std::string error_reason_;
  std::string head_;   ///< accumulates until CRLFCRLF
  std::size_t body_expected_ = 0;
  HttpRequest request_;
};

/// %XX-decodes a URL component ('+' is NOT treated as space — the daemon's
/// query values are ids and comma lists). Invalid escapes pass through.
std::string url_decode(std::string_view s);

/// Splits `target` into path + decoded query map.
void split_target(std::string_view target, std::string& path,
                  std::map<std::string, std::string>& query);

/// Serializes a response with Content-Length, Content-Type and Connection
/// headers (plus any `extra` "Name: value" pairs).
std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>& extra = {});

/// Canonical reason phrase for the handful of statuses the daemon emits.
const char* status_reason(int status);

/// Blocking loopback HTTP client (tests + bench). Connects per call unless
/// constructed with keep_alive, sends one request, reads one response.
class HttpClient {
 public:
  /// `port` on 127.0.0.1. keep_alive reuses one connection across calls.
  explicit HttpClient(std::uint16_t port, bool keep_alive = false);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;  ///< lowercased names
    std::string body;
  };

  /// Throws std::runtime_error on connect/socket failure or a malformed
  /// response (a 4xx/5xx status is returned, not thrown).
  Response get(const std::string& target);
  Response post(const std::string& target, const std::string& body,
                const std::string& content_type = "application/json");

 private:
  Response round_trip(const std::string& request_text);
  int connect_fd();

  std::uint16_t port_;
  bool keep_alive_;
  int fd_ = -1;
};

}  // namespace mrbc::serve
