#pragma once
// Edge-assignment policies: given the global graph, produce the host id for
// every edge. Kept separate from Partition so tests can check assignment
// properties (coverage, balance, grid structure) without building proxies.

#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::partition {

/// Returns one host id per edge of `g`, in the graph's CSR edge order
/// (edge i is the i-th entry of out_targets traversed by ascending source).
std::vector<HostId> assign_edges(const Graph& g, HostId num_hosts, Policy policy);

}  // namespace mrbc::partition
