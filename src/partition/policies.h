#pragma once
// Edge-assignment policies: given the global graph, produce the host id for
// every edge. Kept separate from Partition so tests can check assignment
// properties (coverage, balance, grid structure) without building proxies.

#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::partition {

/// Returns one host id per edge of `g`, in the graph's CSR edge order
/// (edge i is the i-th entry of out_targets traversed by ascending source).
std::vector<HostId> assign_edges(const Graph& g, HostId num_hosts, Policy policy);

/// Owner host of a single edge under the stateless policies, consistent
/// with assign_edges: streaming ingest uses this to route edge deltas to
/// the host that will own them without materializing the whole graph.
/// kGeneralVertexCut and kRandomEdge assign per-run (greedy state / RNG
/// stream), so single-edge routing falls back to a deterministic hash of
/// the endpoints — stable across batches, balanced, but not guaranteed to
/// match a later assign_edges pass.
HostId edge_owner(const graph::Edge& e, graph::VertexId num_vertices, HostId num_hosts,
                  Policy policy);

/// Rendezvous (highest-random-weight) choice of the survivor that adopts a
/// dead host's logical shard: every candidate in `alive` is scored by a
/// hash of (logical, candidate) and the highest score wins. Every survivor
/// computes the same owner with no coordination, and removing a candidate
/// relocates only the shards that pointed at it — the minimal-disruption
/// property that keeps repeated deaths from reshuffling healthy shards.
/// `alive` must be non-empty; `logical` itself may appear in it (a shard
/// whose host is alive maps to itself only if it wins, so callers normally
/// pass the post-death survivor set).
HostId handoff_owner(HostId logical, const std::vector<HostId>& alive);

}  // namespace mrbc::partition
