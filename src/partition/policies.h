#pragma once
// Edge-assignment policies: given the global graph, produce the host id for
// every edge. Kept separate from Partition so tests can check assignment
// properties (coverage, balance, grid structure) without building proxies.

#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::partition {

/// Returns one host id per edge of `g`, in the graph's CSR edge order
/// (edge i is the i-th entry of out_targets traversed by ascending source).
std::vector<HostId> assign_edges(const Graph& g, HostId num_hosts, Policy policy);

/// Owner host of a single edge under the stateless policies, consistent
/// with assign_edges: streaming ingest uses this to route edge deltas to
/// the host that will own them without materializing the whole graph.
/// kGeneralVertexCut and kRandomEdge assign per-run (greedy state / RNG
/// stream), so single-edge routing falls back to a deterministic hash of
/// the endpoints — stable across batches, balanced, but not guaranteed to
/// match a later assign_edges pass.
HostId edge_owner(const graph::Edge& e, graph::VertexId num_vertices, HostId num_hosts,
                  Policy policy);

}  // namespace mrbc::partition
