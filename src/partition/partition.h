#pragma once
// Graph partitioning with master/mirror proxies, following the Gluon
// partitioning abstraction the paper's implementation runs on (Section 4.1):
// edges are distributed among hosts by a policy; each host materializes
// proxy vertices for the endpoints of its edges; one proxy per vertex is
// the master, the rest are mirrors reconciled during communication.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mrbc::partition {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

using HostId = std::uint32_t;

/// Partitioning policies evaluated in the paper (Section 4.1 / 5.2).
enum class Policy {
  kEdgeCutSrc,         ///< edge (u,v) lives with u's owner ("outgoing edge-cut")
  kEdgeCutDst,         ///< edge (u,v) lives with v's owner ("incoming edge-cut")
  kCartesianVertexCut, ///< 2D checkerboard cut; the paper's at-scale choice
  kGeneralVertexCut,   ///< greedy PowerGraph-style hybrid cut
  kRandomEdge,         ///< uniform random edge assignment (worst-case baseline)
};

std::string to_string(Policy policy);

/// One host's slice of the partitioned graph.
struct HostGraph {
  Graph local;                        ///< CSR over local vertex ids
  std::vector<VertexId> local_to_global;
  std::vector<bool> is_master;        ///< per local vertex
  VertexId num_masters = 0;

  VertexId num_proxies() const { return static_cast<VertexId>(local_to_global.size()); }
};

/// Full partition of a graph over `num_hosts` hosts, plus the exchange
/// structure the communication substrate uses to reconcile proxies.
class Partition {
 public:
  /// Partitions `g` over `num_hosts` hosts with `policy`. The global graph
  /// is not retained. Vertices with no incident edges still get a master
  /// proxy on their owner so label arrays stay total.
  Partition(const Graph& g, HostId num_hosts, Policy policy);

  HostId num_hosts() const { return static_cast<HostId>(hosts_.size()); }
  VertexId num_global_vertices() const { return n_global_; }
  EdgeId num_global_edges() const { return m_global_; }
  Policy policy() const { return policy_; }

  const HostGraph& host(HostId h) const { return hosts_[h]; }

  /// Host owning (holding the master proxy of) global vertex v.
  HostId master_host(VertexId global_v) const { return master_host_[global_v]; }

  /// Local id of global vertex v on host h, or graph::kInvalidVertex if no
  /// proxy exists there.
  VertexId local_id(HostId h, VertexId global_v) const { return global_to_local_[h][global_v]; }

  /// Exchange lists: for ordered host pair (mirror host mh -> master host
  /// oh), mirror_lids(mh, oh)[i] on mh corresponds to master_lids(mh, oh)[i]
  /// on oh. Both lists are in ascending global-id order.
  const std::vector<VertexId>& mirror_lids(HostId mirror_host, HostId master_host) const {
    return mirror_lids_[mirror_host][master_host];
  }
  const std::vector<VertexId>& master_lids(HostId mirror_host, HostId master_host) const {
    return master_lids_[mirror_host][master_host];
  }

  /// Total proxies across hosts divided by |V|; 1.0 means no replication.
  double replication_factor() const;

  /// max/mean of per-host edge counts.
  double edge_balance() const;

  /// max/mean of per-host master counts.
  double master_balance() const;

 private:
  void build(const Graph& g, Policy policy);

  VertexId n_global_ = 0;
  EdgeId m_global_ = 0;
  Policy policy_;
  std::vector<HostGraph> hosts_;
  std::vector<HostId> master_host_;
  std::vector<std::vector<VertexId>> global_to_local_;          // [host][global] -> local
  std::vector<std::vector<std::vector<VertexId>>> mirror_lids_; // [mh][oh] -> lids on mh
  std::vector<std::vector<std::vector<VertexId>>> master_lids_; // [mh][oh] -> lids on oh
};

/// Block owner used by the cut policies: global vertex ids are split into
/// num_hosts contiguous blocks of near-equal size.
HostId block_owner(VertexId v, VertexId n, HostId num_hosts);

/// Chooses a pr x pc grid with pr*pc == num_hosts and pr <= pc, pr maximal.
std::pair<HostId, HostId> cartesian_grid(HostId num_hosts);

}  // namespace mrbc::partition
