#include "partition/partition.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/builder.h"
#include "partition/policies.h"
#include "util/stats.h"

namespace mrbc::partition {

Partition::Partition(const Graph& g, HostId num_hosts, Policy policy)
    : n_global_(g.num_vertices()), m_global_(g.num_edges()), policy_(policy) {
  assert(num_hosts >= 1);
  hosts_.resize(num_hosts);
  build(g, policy);
}

void Partition::build(const Graph& g, Policy policy) {
  const HostId H = num_hosts();
  const VertexId n = n_global_;

  // Masters are always block-distributed by vertex id, independent of the
  // edge policy; this matches Gluon, where the partitioner may place edges
  // anywhere but each vertex's canonical copy is at its block owner.
  master_host_.resize(n);
  for (VertexId v = 0; v < n; ++v) master_host_[v] = block_owner(v, n, H);

  const std::vector<HostId> edge_host = assign_edges(g, H, policy);

  // Pass 1: discover the proxy set of every host. A host gets a proxy for
  // each endpoint of each of its edges, and the master host always gets one.
  global_to_local_.assign(H, std::vector<VertexId>(n, graph::kInvalidVertex));
  auto add_proxy = [this](HostId h, VertexId gv) {
    if (global_to_local_[h][gv] == graph::kInvalidVertex) {
      global_to_local_[h][gv] = static_cast<VertexId>(hosts_[h].local_to_global.size());
      hosts_[h].local_to_global.push_back(gv);
    }
  };
  for (VertexId v = 0; v < n; ++v) add_proxy(master_host_[v], v);
  {
    EdgeId e = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.out_neighbors(u)) {
        add_proxy(edge_host[e], u);
        add_proxy(edge_host[e], v);
        ++e;
      }
    }
  }

  // Pass 2: per-host local edge lists and local CSR graphs.
  std::vector<std::vector<graph::Edge>> local_edges(H);
  {
    EdgeId e = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.out_neighbors(u)) {
        const HostId h = edge_host[e++];
        local_edges[h].push_back({global_to_local_[h][u], global_to_local_[h][v]});
      }
    }
  }
  for (HostId h = 0; h < H; ++h) {
    auto& hg = hosts_[h];
    hg.local = graph::build_graph(hg.num_proxies(), std::move(local_edges[h]));
    hg.is_master.assign(hg.num_proxies(), false);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      if (master_host_[hg.local_to_global[l]] == h) {
        hg.is_master[l] = true;
        ++hg.num_masters;
      }
    }
  }

  // Pass 3: exchange lists, ascending global-id order for determinism.
  mirror_lids_.assign(H, std::vector<std::vector<VertexId>>(H));
  master_lids_.assign(H, std::vector<std::vector<VertexId>>(H));
  for (HostId mh = 0; mh < H; ++mh) {
    const auto& hg = hosts_[mh];
    // local_to_global is in insertion order; sort indices by global id.
    std::vector<VertexId> order(hg.num_proxies());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&hg](VertexId a, VertexId b) {
      return hg.local_to_global[a] < hg.local_to_global[b];
    });
    for (VertexId l : order) {
      if (hg.is_master[l]) continue;
      const VertexId gv = hg.local_to_global[l];
      const HostId oh = master_host_[gv];
      mirror_lids_[mh][oh].push_back(l);
      master_lids_[mh][oh].push_back(global_to_local_[oh][gv]);
    }
  }
}

double Partition::replication_factor() const {
  std::size_t proxies = 0;
  for (const auto& hg : hosts_) proxies += hg.num_proxies();
  return n_global_ ? static_cast<double>(proxies) / static_cast<double>(n_global_) : 0.0;
}

double Partition::edge_balance() const {
  std::vector<double> per_host;
  per_host.reserve(hosts_.size());
  for (const auto& hg : hosts_) per_host.push_back(static_cast<double>(hg.local.num_edges()));
  return util::imbalance(per_host);
}

double Partition::master_balance() const {
  std::vector<double> per_host;
  per_host.reserve(hosts_.size());
  for (const auto& hg : hosts_) per_host.push_back(static_cast<double>(hg.num_masters));
  return util::imbalance(per_host);
}

}  // namespace mrbc::partition
