#include "partition/policies.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace mrbc::partition {

HostId block_owner(VertexId v, VertexId n, HostId num_hosts) {
  if (n == 0) return 0;
  // Contiguous blocks of size ceil(n/H) then floor(n/H); equivalent to the
  // standard balanced block distribution.
  const VertexId base = n / num_hosts;
  const VertexId extra = n % num_hosts;
  const VertexId boundary = extra * (base + 1);
  if (v < boundary) return static_cast<HostId>(v / (base + 1));
  return static_cast<HostId>(extra + (v - boundary) / std::max<VertexId>(base, 1));
}

std::pair<HostId, HostId> cartesian_grid(HostId num_hosts) {
  HostId pr = 1;
  for (HostId r = 1; r * r <= num_hosts; ++r) {
    if (num_hosts % r == 0) pr = r;
  }
  return {pr, num_hosts / pr};
}

namespace {

std::vector<HostId> assign_general_vertex_cut(const Graph& g, HostId num_hosts) {
  // Greedy PowerGraph-style heuristic: prefer hosts that already hold a
  // proxy of an endpoint; break ties (and the cold-start case) by load.
  const VertexId n = g.num_vertices();
  std::vector<HostId> assignment(g.num_edges());
  std::vector<EdgeId> load(num_hosts, 0);
  // replicas[v] = bitmask over hosts holding a proxy of v (num_hosts <= 64
  // is enough for the simulator; fall back to modulo hashing beyond that).
  assert(num_hosts <= 64 && "general vertex-cut supports up to 64 simulated hosts");
  std::vector<std::uint64_t> replicas(n, 0);
  // Balance override: replica affinity must not let any host run away from
  // the least-loaded one by more than this slack, or the cut degenerates on
  // skewed graphs (hubs pull every edge to one host).
  const EdgeId slack = std::max<EdgeId>(8, g.num_edges() / (16ull * num_hosts));
  EdgeId e = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.out_neighbors(u)) {
      const std::uint64_t both = replicas[u] & replicas[v];
      const std::uint64_t either = replicas[u] | replicas[v];
      const std::uint64_t candidates = both != 0 ? both : (either != 0 ? either : ~0ULL);
      HostId best = 0;
      EdgeId best_load = static_cast<EdgeId>(-1);
      HostId global_best = 0;
      EdgeId global_best_load = static_cast<EdgeId>(-1);
      for (HostId h = 0; h < num_hosts; ++h) {
        if (load[h] < global_best_load) {
          global_best_load = load[h];
          global_best = h;
        }
        if (((candidates >> h) & 1u) && load[h] < best_load) {
          best_load = load[h];
          best = h;
        }
      }
      if (best_load > global_best_load + slack) {
        best = global_best;
      }
      assignment[e++] = best;
      ++load[best];
      replicas[u] |= 1ULL << best;
      replicas[v] |= 1ULL << best;
    }
  }
  return assignment;
}

}  // namespace

std::vector<HostId> assign_edges(const Graph& g, HostId num_hosts, Policy policy) {
  const VertexId n = g.num_vertices();
  std::vector<HostId> assignment(g.num_edges());
  switch (policy) {
    case Policy::kEdgeCutSrc: {
      EdgeId e = 0;
      for (VertexId u = 0; u < n; ++u) {
        const HostId h = block_owner(u, n, num_hosts);
        for (std::size_t i = 0; i < g.out_degree(u); ++i) assignment[e++] = h;
      }
      break;
    }
    case Policy::kEdgeCutDst: {
      EdgeId e = 0;
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v : g.out_neighbors(u)) assignment[e++] = block_owner(v, n, num_hosts);
      }
      break;
    }
    case Policy::kCartesianVertexCut: {
      const auto [pr, pc] = cartesian_grid(num_hosts);
      EdgeId e = 0;
      for (VertexId u = 0; u < n; ++u) {
        // Host grid position: row from u's owner, column from v's owner.
        const HostId row = block_owner(u, n, num_hosts) / pc;
        for (VertexId v : g.out_neighbors(u)) {
          const HostId col = block_owner(v, n, num_hosts) % pc;
          assignment[e++] = row * pc + col;
        }
      }
      (void)pr;
      break;
    }
    case Policy::kGeneralVertexCut:
      return assign_general_vertex_cut(g, num_hosts);
    case Policy::kRandomEdge: {
      util::Xoshiro256 rng(0x5eed5eedULL);
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        assignment[e] = static_cast<HostId>(rng.next_bounded(num_hosts));
      }
      break;
    }
  }
  return assignment;
}

HostId edge_owner(const graph::Edge& e, graph::VertexId num_vertices, HostId num_hosts,
                  Policy policy) {
  switch (policy) {
    case Policy::kEdgeCutSrc:
      return block_owner(e.src, num_vertices, num_hosts);
    case Policy::kEdgeCutDst:
      return block_owner(e.dst, num_vertices, num_hosts);
    case Policy::kCartesianVertexCut: {
      const auto [pr, pc] = cartesian_grid(num_hosts);
      const HostId row = block_owner(e.src, num_vertices, num_hosts) / pc;
      const HostId col = block_owner(e.dst, num_vertices, num_hosts) % pc;
      (void)pr;
      return row * pc + col;
    }
    case Policy::kGeneralVertexCut:
    case Policy::kRandomEdge: {
      // SplitMix64 over the packed endpoints: deterministic, well mixed.
      util::SplitMix64 mix((static_cast<std::uint64_t>(e.src) << 32) | e.dst);
      return static_cast<HostId>(mix.next() % num_hosts);
    }
  }
  return 0;
}

HostId handoff_owner(HostId logical, const std::vector<HostId>& alive) {
  assert(!alive.empty() && "handoff needs at least one survivor");
  HostId best = alive.front();
  std::uint64_t best_weight = 0;
  for (HostId candidate : alive) {
    util::SplitMix64 mix((static_cast<std::uint64_t>(logical) << 32) |
                         (static_cast<std::uint64_t>(candidate) + 1));
    const std::uint64_t weight = mix.next();
    if (weight > best_weight || (weight == best_weight && candidate < best)) {
      best_weight = weight;
      best = candidate;
    }
  }
  return best;
}

std::string to_string(Policy policy) {
  switch (policy) {
    case Policy::kEdgeCutSrc: return "edge-cut-src";
    case Policy::kEdgeCutDst: return "edge-cut-dst";
    case Policy::kCartesianVertexCut: return "cartesian-vertex-cut";
    case Policy::kGeneralVertexCut: return "general-vertex-cut";
    case Policy::kRandomEdge: return "random-edge";
  }
  return "?";
}

}  // namespace mrbc::partition
