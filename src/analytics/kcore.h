#pragma once
// Distributed k-core decomposition on the Gluon-style substrate: iterative
// peeling over the undirected degree. A vertex whose remaining degree drops
// below k is removed; removals propagate degree decrements to neighbors
// until a fixpoint. A third reduction pattern for the substrate (summed
// decrements with reduce-reset), alongside min-label CC and summed-rank
// PageRank.

#include <vector>

#include "engine/cluster.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::analytics {

struct KcoreResult {
  /// Per-vertex flag: true if the vertex survives in the k-core.
  std::vector<bool> in_core;
  std::size_t core_size = 0;
  sim::RunStats stats;
};

/// Vertices of the k-core of the undirected closure of the partitioned
/// graph (degree = in-degree + out-degree of the directed graph).
KcoreResult kcore(const partition::Partition& part, std::uint32_t k,
                  const sim::ClusterOptions& options = {});

KcoreResult kcore(const graph::Graph& g, std::uint32_t k, partition::HostId num_hosts,
                  const sim::ClusterOptions& options = {});

/// Sequential peeling reference for validation.
std::vector<bool> kcore_reference(const graph::Graph& g, std::uint32_t k);

}  // namespace mrbc::analytics
