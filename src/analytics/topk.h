#pragma once
// Top-k ranking over a per-vertex score vector — the /topk endpoint's
// helper, shared with examples and benches. Deterministic: ties broken by
// ascending vertex id, so two runs (or two hosts serving the same epoch)
// always return the same ranking.

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mrbc::analytics {

struct ScoredVertex {
  graph::VertexId vertex = 0;
  double score = 0.0;

  friend bool operator==(const ScoredVertex&, const ScoredVertex&) = default;
};

/// The k highest-scoring vertices, score descending, ties by ascending
/// vertex id. k >= scores.size() returns the full ranking; k == 0 returns
/// empty. O(n + k log n) via partial_sort.
std::vector<ScoredVertex> top_k(std::span<const double> scores, std::size_t k);

}  // namespace mrbc::analytics
