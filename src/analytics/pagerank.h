#pragma once
// Distributed PageRank on the Gluon-style substrate (topology-driven,
// synchronous iterations): each round every vertex pushes rank/out_degree
// along its local out-edges, partial sums are reduce(+)-ed to masters,
// masters apply the damping update and broadcast the new rank. A third
// vertex program exercising the substrate with a different reduction
// (sum) and a dense per-round update pattern.

#include <vector>

#include "engine/cluster.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::analytics {

struct PagerankOptions {
  double damping = 0.85;
  std::uint32_t max_iterations = 50;
  /// Stop when the L1 change of the rank vector falls below this.
  double tolerance = 1e-9;
  sim::ClusterOptions cluster;
};

struct PagerankResult {
  std::vector<double> rank;  ///< sums to ~1 over vertices
  std::uint32_t iterations = 0;
  sim::RunStats stats;
};

PagerankResult pagerank(const partition::Partition& part, const PagerankOptions& options = {});

PagerankResult pagerank(const graph::Graph& g, partition::HostId num_hosts,
                        const PagerankOptions& options = {});

/// Sequential reference (power iteration) for validation.
std::vector<double> pagerank_reference(const graph::Graph& g, double damping,
                                       std::uint32_t iterations);

}  // namespace mrbc::analytics
