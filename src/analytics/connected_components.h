#pragma once
// Distributed connected components on the Gluon-style substrate — a second
// vertex program (besides BC) demonstrating that the simulated D-Galois
// stack is a general graph-analytics system, exactly as the paper's host
// system is. Label-propagation with min-reduction: every vertex starts
// with its own id; labels flow across edges (both directions — weak
// connectivity) until global quiescence.

#include <vector>

#include "engine/cluster.h"
#include "graph/graph.h"
#include "partition/partition.h"

namespace mrbc::analytics {

struct CcResult {
  /// Per-vertex component label (the smallest vertex id in the component).
  std::vector<graph::VertexId> component;
  sim::RunStats stats;
};

/// Weakly connected components over a pre-built partition.
CcResult connected_components(const partition::Partition& part,
                              const sim::ClusterOptions& options = {});

/// Convenience overload: partitions internally.
CcResult connected_components(const graph::Graph& g, partition::HostId num_hosts,
                              partition::Policy policy = partition::Policy::kCartesianVertexCut,
                              const sim::ClusterOptions& options = {});

}  // namespace mrbc::analytics
