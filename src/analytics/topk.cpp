#include "analytics/topk.h"

#include <algorithm>
#include <numeric>

namespace mrbc::analytics {

std::vector<ScoredVertex> top_k(std::span<const double> scores, std::size_t k) {
  const std::size_t n = scores.size();
  k = std::min(k, n);
  std::vector<graph::VertexId> order(n);
  std::iota(order.begin(), order.end(), graph::VertexId{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&scores](graph::VertexId a, graph::VertexId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<ScoredVertex> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back({order[i], scores[order[i]]});
  return out;
}

}  // namespace mrbc::analytics
