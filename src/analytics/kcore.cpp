#include "analytics/kcore.h"

#include <deque>

#include "comm/substrate.h"

namespace mrbc::analytics {

using graph::VertexId;
using partition::HostId;
using partition::Partition;

namespace {

/// Reduce-phase label: degree decrements accumulated on mirror proxies.
struct DecAccessor {
  using Value = std::uint32_t;
  std::vector<std::vector<std::uint32_t>>& pending;
  std::vector<std::vector<VertexId>>& touched;

  Value get(HostId h, VertexId lid) { return pending[h][lid]; }
  void reduce(HostId h, VertexId lid, Value v) {
    if (v > 0 && pending[h][lid] == 0) touched[h].push_back(lid);
    pending[h][lid] += v;
  }
  void set(HostId, VertexId, Value) {}  // decrements are never broadcast
  void reset(HostId h, VertexId lid) { pending[h][lid] = 0; }
};

/// Broadcast-phase label: the removal bit of a peeled vertex.
struct RemovalAccessor {
  using Value = std::uint8_t;
  std::vector<std::vector<std::uint8_t>>& removed;
  std::vector<std::vector<VertexId>>& newly_removed;

  Value get(HostId h, VertexId lid) { return removed[h][lid]; }
  void reduce(HostId, VertexId, Value) {}  // removals originate at masters only
  void set(HostId h, VertexId lid, Value v) {
    if (v != 0 && removed[h][lid] == 0) {
      removed[h][lid] = 1;
      newly_removed[h].push_back(lid);
    }
  }
  void reset(HostId, VertexId) {}
};

}  // namespace

KcoreResult kcore(const Partition& part, std::uint32_t k, const sim::ClusterOptions& options) {
  const HostId H = part.num_hosts();
  const VertexId n = part.num_global_vertices();
  comm::Substrate substrate(part);

  // Global undirected degrees, assembled once (a preprocessing all-reduce
  // in a real system; only masters consult them afterwards).
  std::vector<std::uint32_t> degree(n, 0);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      degree[hg.local_to_global[l]] +=
          static_cast<std::uint32_t>(hg.local.out_degree(l) + hg.local.in_degree(l));
    }
  }

  std::vector<std::vector<std::uint32_t>> pending(H);
  std::vector<std::vector<std::uint8_t>> removed(H);
  std::vector<std::vector<VertexId>> touched(H);        // proxies with pending > 0
  std::vector<std::vector<VertexId>> newly_removed(H);  // peels to propagate locally
  for (HostId h = 0; h < H; ++h) {
    pending[h].assign(part.host(h).num_proxies(), 0);
    removed[h].assign(part.host(h).num_proxies(), 0);
  }
  DecAccessor dec_acc{pending, touched};
  RemovalAccessor rem_acc{removed, newly_removed};

  // Seed: initially under-k vertices peel at their masters.
  for (VertexId v = 0; v < n; ++v) {
    if (degree[v] < k) {
      const HostId mh = part.master_host(v);
      const VertexId lid = part.local_id(mh, v);
      removed[mh][lid] = 1;
      newly_removed[mh].push_back(lid);
      substrate.flag_broadcast(mh, lid);
    }
  }

  auto compute = [&](HostId h, std::size_t) {
    const auto& hg = part.host(h);
    sim::HostWork w;
    // 1. Propagate this round's peels over the host's local edges.
    std::vector<VertexId> peels = std::move(newly_removed[h]);
    newly_removed[h].clear();
    for (VertexId lid : peels) {
      auto bump = [&](VertexId tl) {
        if (removed[h][tl]) return;
        if (pending[h][tl] == 0) touched[h].push_back(tl);
        ++pending[h][tl];
        if (!hg.is_master[tl]) substrate.flag_reduce(h, tl);
        ++w.work_items;
      };
      for (VertexId tl : hg.local.out_neighbors(lid)) bump(tl);
      for (VertexId tl : hg.local.in_neighbors(lid)) bump(tl);
    }
    // 2. Masters consume accumulated decrements and peel when under k.
    std::vector<VertexId> dirty = std::move(touched[h]);
    touched[h].clear();
    for (VertexId lid : dirty) {
      // Mirror pendings are shipped (and reset) by the reduce phase — only
      // masters consume them here.
      if (!hg.is_master[lid]) continue;
      const std::uint32_t dec = pending[h][lid];
      pending[h][lid] = 0;
      if (removed[h][lid] || dec == 0) continue;
      const VertexId gv = hg.local_to_global[lid];
      degree[gv] = degree[gv] >= dec ? degree[gv] - dec : 0;
      ++w.work_items;
      if (degree[gv] < k) {
        removed[h][lid] = 1;
        newly_removed[h].push_back(lid);
        substrate.flag_broadcast(h, lid);
      }
    }
    w.active = !newly_removed[h].empty() || !touched[h].empty();
    return w;
  };

  sim::BspLoop loop(H, options);
  KcoreResult result;
  result.stats = loop.run(
      [&](std::size_t) {
        // Decrements flow mirror -> master, removals master -> mirrors.
        comm::SyncStats s = substrate.reduce(dec_acc);
        s += substrate.broadcast(rem_acc);
        return s;
      },
      compute, [&] { return substrate.any_pending(); });

  result.in_core.assign(n, false);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      if (hg.is_master[l] && !removed[h][l]) {
        result.in_core[hg.local_to_global[l]] = true;
        ++result.core_size;
      }
    }
  }
  return result;
}

KcoreResult kcore(const graph::Graph& g, std::uint32_t k, HostId num_hosts,
                  const sim::ClusterOptions& options) {
  Partition part(g, num_hosts, partition::Policy::kCartesianVertexCut);
  return kcore(part, k, options);
}

std::vector<bool> kcore_reference(const graph::Graph& g, std::uint32_t k) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::vector<bool> removed(n, false);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v) + g.in_degree(v));
    if (degree[v] < k) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    auto bump = [&](VertexId w) {
      if (removed[w]) return;
      if (--degree[w] < k) {
        removed[w] = true;
        queue.push_back(w);
      }
    };
    for (VertexId w : g.out_neighbors(v)) bump(w);
    for (VertexId w : g.in_neighbors(v)) bump(w);
  }
  std::vector<bool> in_core(n);
  for (VertexId v = 0; v < n; ++v) in_core[v] = !removed[v];
  return in_core;
}

}  // namespace mrbc::analytics
