#include "analytics/pagerank.h"

#include <cmath>

#include "comm/substrate.h"

namespace mrbc::analytics {

using graph::VertexId;
using partition::HostId;
using partition::Partition;

namespace {

/// Proxy label: the partial contribution sum accumulated this iteration.
struct PrAccessor {
  using Value = double;
  std::vector<std::vector<double>>& contrib;

  Value get(HostId h, VertexId lid) { return contrib[h][lid]; }
  void reduce(HostId h, VertexId lid, Value v) { contrib[h][lid] += v; }
  void set(HostId h, VertexId lid, Value v) { contrib[h][lid] = v; }
  void reset(HostId h, VertexId lid) { contrib[h][lid] = 0.0; }
};

/// Rank broadcast after the master update.
struct RankAccessor {
  using Value = double;
  std::vector<std::vector<double>>& rank;

  Value get(HostId h, VertexId lid) { return rank[h][lid]; }
  void reduce(HostId h, VertexId lid, Value v) { rank[h][lid] = v; }  // unused
  void set(HostId h, VertexId lid, Value v) { rank[h][lid] = v; }
  void reset(HostId, VertexId) {}
};

}  // namespace

PagerankResult pagerank(const Partition& part, const PagerankOptions& options) {
  const HostId H = part.num_hosts();
  const double n = static_cast<double>(part.num_global_vertices());
  comm::Substrate substrate(part);
  std::vector<std::vector<double>> rank(H), contrib(H);
  // Global out-degrees: each host knows only its local slice of a vertex's
  // edges, so degrees are assembled once up front (a preprocessing
  // all-reduce in a real system).
  std::vector<double> out_degree(part.num_global_vertices(), 0.0);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      out_degree[hg.local_to_global[l]] += static_cast<double>(hg.local.out_degree(l));
    }
    rank[h].assign(hg.num_proxies(), 1.0 / n);
    contrib[h].assign(hg.num_proxies(), 0.0);
  }

  PagerankResult result;
  PrAccessor contrib_acc{contrib};
  RankAccessor rank_acc{rank};
  double l1_change = 1.0;

  for (std::uint32_t iter = 0; iter < options.max_iterations && l1_change > options.tolerance;
       ++iter) {
    ++result.iterations;
    // Phase 1 (compute): push rank/deg along local out-edges into contrib.
    util::Timer timer;
    std::vector<double> host_work(H, 0.0);
    for (HostId h = 0; h < H; ++h) {
      util::Timer host_timer;
      const auto& hg = part.host(h);
      for (VertexId l = 0; l < hg.num_proxies(); ++l) {
        const VertexId gv = hg.local_to_global[l];
        if (out_degree[gv] == 0) continue;
        const double share = rank[h][l] / out_degree[gv];
        for (VertexId t : hg.local.out_neighbors(l)) {
          contrib[h][t] += share;
          ++host_work[h];
        }
      }
      for (VertexId l = 0; l < hg.num_proxies(); ++l) {
        if (contrib[h][l] != 0.0 && !hg.is_master[l]) substrate.flag_reduce(h, l);
      }
      const double sec = host_timer.seconds();
      result.stats.per_host_compute_seconds.resize(H, 0.0);
      result.stats.per_host_compute_seconds[h] += sec;
    }
    result.stats.compute_seconds += timer.seconds();
    result.stats.imbalance_sum += util::imbalance(host_work);

    // Phase 2 (comm): partial contributions to masters.
    comm::SyncStats reduce_stats = substrate.reduce(contrib_acc);

    // Phase 3: master update + convergence metric.
    l1_change = 0.0;
    for (HostId h = 0; h < H; ++h) {
      const auto& hg = part.host(h);
      for (VertexId l = 0; l < hg.num_proxies(); ++l) {
        if (!hg.is_master[l]) continue;
        const double updated = (1.0 - options.damping) / n + options.damping * contrib[h][l];
        l1_change += std::abs(updated - rank[h][l]);
        rank[h][l] = updated;
        substrate.flag_broadcast(h, l);
      }
    }
    // Phase 4 (comm): new ranks to mirrors; reset contributions.
    comm::SyncStats bcast_stats = substrate.broadcast(rank_acc);
    for (HostId h = 0; h < H; ++h) {
      std::fill(contrib[h].begin(), contrib[h].end(), 0.0);
    }

    comm::SyncStats round = reduce_stats;
    round += bcast_stats;
    std::size_t max_egress = 0, max_msgs = 0;
    for (std::size_t b : round.bytes_per_host) max_egress = std::max(max_egress, b);
    for (std::size_t m : round.msgs_per_host) max_msgs = std::max(max_msgs, m);
    result.stats.network_seconds +=
        options.cluster.network.round_seconds(max_msgs, max_egress);
    result.stats.messages += round.messages;
    result.stats.bytes += round.bytes;
    result.stats.values += round.values;
    ++result.stats.rounds;
  }

  result.rank.assign(part.num_global_vertices(), 0.0);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      if (hg.is_master[l]) result.rank[hg.local_to_global[l]] = rank[h][l];
    }
  }
  return result;
}

PagerankResult pagerank(const graph::Graph& g, HostId num_hosts, const PagerankOptions& options) {
  Partition part(g, num_hosts, partition::Policy::kCartesianVertexCut);
  return pagerank(part, options);
}

std::vector<double> pagerank_reference(const graph::Graph& g, double damping,
                                       std::uint32_t iterations) {
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / static_cast<double>(n));
    for (VertexId u = 0; u < n; ++u) {
      const std::size_t deg = g.out_degree(u);
      if (deg == 0) continue;
      const double share = damping * rank[u] / static_cast<double>(deg);
      for (VertexId v : g.out_neighbors(u)) next[v] += share;
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace mrbc::analytics
