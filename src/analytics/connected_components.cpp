#include "analytics/connected_components.h"

#include "comm/substrate.h"

namespace mrbc::analytics {

using graph::VertexId;
using partition::HostId;
using partition::Partition;

namespace {

struct CcAccessor {
  using Value = VertexId;
  std::vector<std::vector<VertexId>>& labels;
  std::vector<std::vector<VertexId>>& worklist;

  Value get(HostId h, VertexId lid) { return labels[h][lid]; }
  void reduce(HostId h, VertexId lid, Value v) {
    // An improved master must re-propagate over its local edges too.
    if (v < labels[h][lid]) {
      labels[h][lid] = v;
      worklist[h].push_back(lid);
    }
  }
  void set(HostId h, VertexId lid, Value v) {
    if (v < labels[h][lid]) {
      labels[h][lid] = v;
      worklist[h].push_back(lid);
    }
  }
  void reset(HostId h, VertexId lid) { labels[h][lid] = graph::kInvalidVertex; }
};

}  // namespace

CcResult connected_components(const Partition& part, const sim::ClusterOptions& options) {
  const HostId H = part.num_hosts();
  comm::Substrate substrate(part);
  std::vector<std::vector<VertexId>> labels(H);
  std::vector<std::vector<VertexId>> worklist(H);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    labels[h].resize(hg.num_proxies());
    worklist[h].reserve(hg.num_proxies());
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      labels[h][l] = hg.local_to_global[l];
      worklist[h].push_back(l);  // everyone active in round 1
    }
  }
  CcAccessor acc{labels, worklist};

  auto compute = [&](HostId h, std::size_t) {
    const auto& hg = part.host(h);
    sim::HostWork w;
    std::vector<VertexId> frontier = std::move(worklist[h]);
    worklist[h].clear();
    for (VertexId lid : frontier) {
      const VertexId label = labels[h][lid];
      // Labels flow both ways: weak connectivity.
      auto push = [&](VertexId tl) {
        ++w.work_items;
        if (label < labels[h][tl]) {
          labels[h][tl] = label;
          worklist[h].push_back(tl);
          if (!hg.is_master[tl]) substrate.flag_reduce(h, tl);
          else substrate.flag_broadcast(h, tl);
        }
      };
      for (VertexId tl : hg.local.out_neighbors(lid)) push(tl);
      for (VertexId tl : hg.local.in_neighbors(lid)) push(tl);
    }
    w.active = !worklist[h].empty();
    return w;
  };

  sim::BspLoop loop(H, options);
  CcResult result;
  result.stats = loop.run([&](std::size_t) { return substrate.sync(acc); }, compute,
                          [&] { return substrate.any_pending(); });

  result.component.assign(part.num_global_vertices(), graph::kInvalidVertex);
  for (HostId h = 0; h < H; ++h) {
    const auto& hg = part.host(h);
    for (VertexId l = 0; l < hg.num_proxies(); ++l) {
      if (hg.is_master[l]) result.component[hg.local_to_global[l]] = labels[h][l];
    }
  }
  return result;
}

CcResult connected_components(const graph::Graph& g, HostId num_hosts, partition::Policy policy,
                              const sim::ClusterOptions& options) {
  Partition part(g, num_hosts, policy);
  return connected_components(part, options);
}

}  // namespace mrbc::analytics
